package sim_test

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// traceOutNets returns the adder's output-port bits in the
// characterization flow's order (sum LSB-first, then carry-out).
func traceOutNets(nl *netlist.Netlist) []netlist.NetID {
	psum, _ := nl.OutputPort(synth.PortSum)
	pcout, _ := nl.OutputPort(synth.PortCout)
	out := make([]netlist.NetID, 0, len(psum.Bits)+len(pcout.Bits))
	out = append(out, psum.Bits...)
	return append(out, pcout.Bits...)
}

// traceChunks builds chained (prev, cur) lane-image chunks for a random
// pattern stream of the given length, including a ragged final chunk
// when patterns is not a multiple of 64.
func traceChunks(nl *netlist.Netlist, mask uint64, patterns int, seed uint64) (chunks [][2][]uint64, ns []int) {
	pa, _ := nl.InputPort(synth.PortA)
	pb, _ := nl.InputPort(synth.PortB)
	rng := rand.New(rand.NewPCG(seed, 29))
	prevA, prevB := uint64(0), uint64(0)
	for base := 0; base < patterns; base += sim.WordLanes {
		n := patterns - base
		if n > sim.WordLanes {
			n = sim.WordLanes
		}
		prevW := make([]uint64, nl.NumNets())
		curW := make([]uint64, nl.NumNets())
		for k := 0; k < n; k++ {
			a, b := rng.Uint64()&mask, rng.Uint64()&mask
			netlist.AssignPortLane(prevW, pa, uint(k), prevA)
			netlist.AssignPortLane(prevW, pb, uint(k), prevB)
			netlist.AssignPortLane(curW, pa, uint(k), a)
			netlist.AssignPortLane(curW, pb, uint(k), b)
			prevA, prevB = a, b
		}
		chunks = append(chunks, [2][]uint64{prevW, curW})
		ns = append(ns, n)
	}
	return chunks, ns
}

// checkResampleMatchesChunk requires one trace's resample at tclk to be
// bit-identical to a direct StepWordChunk at the same tclk: captured
// output words, per-lane energy bits, and the late mask.
func checkResampleMatchesChunk(t *testing.T, direct *sim.WordEngine, trace *sim.WordTrace,
	outNets []netlist.NetID, prev, cur []uint64, tclk float64) {
	t.Helper()
	wres, err := direct.StepWordChunk(prev, cur, tclk)
	if err != nil {
		t.Fatal(err)
	}
	var sample sim.WordSample
	if err := trace.Resample(tclk, &sample); err != nil {
		t.Fatal(err)
	}
	for s, id := range outNets {
		if sample.CapturedW[s] != wres.CapturedW[id] {
			t.Fatalf("tclk %v net %d: resampled %x, direct %x",
				tclk, id, sample.CapturedW[s], wres.CapturedW[id])
		}
	}
	for k := range sample.EnergyFJ {
		if math.Float64bits(sample.EnergyFJ[k]) != math.Float64bits(wres.EnergyFJ[k]) {
			t.Fatalf("tclk %v lane %d: resampled energy %v (bits %x), direct %v (bits %x)",
				tclk, k, sample.EnergyFJ[k], math.Float64bits(sample.EnergyFJ[k]),
				wres.EnergyFJ[k], math.Float64bits(wres.EnergyFJ[k]))
		}
	}
	if sample.LateW != wres.LateW {
		t.Fatalf("tclk %v: resampled late %x, direct %x", tclk, sample.LateW, wres.LateW)
	}
}

// TestTraceResampleMatchesWordChunk is the trace-path parity argument:
// one full-settle StepWordTrace per chunk, resampled at every clock of a
// (Vdd, Vbb) × Tclk grid, must be bit-identical to a direct
// StepWordChunk at each clock — across both adder architectures, chained
// chunks including a ragged tail, and deadlines from "captures nothing"
// to "captures everything".
func TestTraceResampleMatchesWordChunk(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	archs := []struct {
		arch  synth.Arch
		width int
		mask  uint64
	}{
		{synth.ArchRCA, 8, 0xff},
		{synth.ArchBKA, 16, 0xffff},
	}
	ops := []fdsoi.OperatingPoint{
		{Vdd: 1.0, Vbb: 0},
		{Vdd: 0.7, Vbb: 0},
		{Vdd: 0.55, Vbb: 2},
		{Vdd: 0.45, Vbb: 2},
	}
	tclks := []float64{0.02, 0.08, 0.15, 0.3, 0.9, 5.0}
	for _, ad := range archs {
		mm := fdsoi.NewMismatchSampler(0.03, 13)
		nl, err := synth.NewAdder(ad.arch, synth.AdderConfig{Width: ad.width, Mismatch: mm})
		if err != nil {
			t.Fatal(err)
		}
		outNets := traceOutNets(nl)
		chunks, _ := traceChunks(nl, ad.mask, 150, 41) // 2 full chunks + ragged 22-lane tail
		for _, op := range ops {
			t.Run(fmt.Sprintf("%s%d/%.2fV/%.0fbb", ad.arch, ad.width, op.Vdd, op.Vbb), func(t *testing.T) {
				tracer := sim.NewWord(nl, lib, proc, op)
				direct := sim.NewWord(nl, lib, proc, op)
				for _, c := range chunks {
					trace, err := tracer.StepWordTrace(c[0], c[1], outNets)
					if err != nil {
						t.Fatal(err)
					}
					for _, tclk := range tclks {
						checkResampleMatchesChunk(t, direct, trace, outNets, c[0], c[1], tclk)
					}
				}
			})
		}
	}
}

// TestTraceResampleAtEventTimestamps pins the capture boundary: a Tclk
// placed exactly on an event's timestamp captures that event (the
// calendar queue's pop boundary is inclusive), and the float just below
// it does not. Every recorded event time of a deeply over-scaled chunk
// is tried as a deadline, bit-compared against the direct path.
func TestTraceResampleAtEventTimestamps(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	mm := fdsoi.NewMismatchSampler(0.03, 17)
	nl, err := synth.NewAdder(synth.ArchBKA, synth.AdderConfig{Width: 8, Mismatch: mm})
	if err != nil {
		t.Fatal(err)
	}
	outNets := traceOutNets(nl)
	chunks, _ := traceChunks(nl, 0xff, sim.WordLanes, 3)
	op := fdsoi.OperatingPoint{Vdd: 0.6, Vbb: 0}
	tracer := sim.NewWord(nl, lib, proc, op)
	direct := sim.NewWord(nl, lib, proc, op)
	c := chunks[0]
	trace, err := tracer.StepWordTrace(c[0], c[1], outNets)
	if err != nil {
		t.Fatal(err)
	}
	times := trace.EventTimes(nil)
	if len(times) == 0 {
		t.Fatal("trace recorded no events")
	}
	tried := 0
	for _, tt := range times {
		for _, tclk := range []float64{tt, math.Nextafter(tt, 0), math.Nextafter(tt, math.Inf(1))} {
			if tclk <= 0 {
				continue
			}
			checkResampleMatchesChunk(t, direct, trace, outNets, c[0], c[1], tclk)
			tried++
		}
	}
	if tried == 0 {
		t.Fatal("no boundary deadlines tried")
	}
}

// TestTraceSteadyStateAllocs: after warm-up, a trace step plus its
// resamples must not allocate — the engine owns the trace buffers, the
// caller owns the sample.
func TestTraceSteadyStateAllocs(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	nl, err := synth.BKA(synth.AdderConfig{Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	outNets := traceOutNets(nl)
	chunks, _ := traceChunks(nl, 0xffff, 2*sim.WordLanes, 9)
	eng := sim.NewWord(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.6, Vbb: 2})
	var sample sim.WordSample
	step := func(c [2][]uint64) {
		trace, err := eng.StepWordTrace(c[0], c[1], outNets)
		if err != nil {
			t.Fatal(err)
		}
		for _, tclk := range []float64{0.2, 0.3, 0.45} {
			if err := trace.Resample(tclk, &sample); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(chunks[0]) // warm up engine- and caller-owned buffers
	step(chunks[1])
	if allocs := testing.AllocsPerRun(50, func() { step(chunks[0]); step(chunks[1]) }); allocs > 0 {
		t.Errorf("steady-state trace step allocates %.1f times per run, want 0", allocs)
	}
}

// TestTraceValidation pins the trace path's error behavior.
func TestTraceValidation(t *testing.T) {
	nl, err := synth.RCA(synth.AdderConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewWord(nl, cell.Default28nmLVT(), fdsoi.Default(), fdsoi.OperatingPoint{Vdd: 1.0})
	lanes := make([]uint64, nl.NumNets())
	if _, err := eng.StepWordTrace(lanes[:1], lanes, nil); err == nil {
		t.Fatal("short prev image accepted")
	}
	if _, err := eng.StepWordTrace(lanes, lanes[:1], nil); err == nil {
		t.Fatal("short cur image accepted")
	}
	if _, err := eng.StepWordTrace(lanes, lanes, []netlist.NetID{netlist.NetID(nl.NumNets())}); err == nil {
		t.Fatal("out-of-range tracked net accepted")
	}
	if _, err := eng.StepWordTrace(lanes, lanes, []netlist.NetID{1, 2, 1}); err == nil {
		t.Fatal("duplicate tracked net accepted")
	}
	trace, err := eng.StepWordTrace(lanes, lanes, []netlist.NetID{1, 2})
	if err != nil {
		t.Fatal("tracked set rejected after duplicate error:", err)
	}
	var sample sim.WordSample
	if err := trace.Resample(0, &sample); err == nil {
		t.Fatal("non-positive tclk accepted")
	}
	if err := trace.Resample(math.NaN(), &sample); err == nil {
		t.Fatal("NaN tclk accepted")
	}
	if err := trace.Resample(0.5, &sample); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StepWordChunk(lanes, lanes, math.NaN()); err == nil {
		t.Fatal("StepWordChunk accepted NaN tclk")
	}
}
