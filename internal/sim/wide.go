package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// MaxWideWords is the largest lane-block width of the wide engine: K
// words of WordLanes patterns each, so one event wave serves up to
// MaxWideWords×64 = 512 patterns.
const MaxWideWords = 8

// wideRef is the wide engine's event payload: the firing gate, the
// arena slot holding its scheduled K-word output block, and the index
// of the effective event during whose processing the push happened
// (-1 for events seeded by the t = 0 input switch). The parent index
// is what makes a recorded wave re-timeable at another operating
// point: a pushed event's time is always parentTime + gateDelay, so a
// new delay table replays the identical float additions. The full
// event (qev[wideRef]) is 32 bytes.
type wideRef struct {
	gate   netlist.GateID
	slot   int32
	parent int32
}

// WideResult is the outcome of one K×64-lane two-vector chunk. It is
// owned by the engine and valid until the next StepWideChunk call.
// Lane L = word j, bit b addresses pattern j·64+b of the chunk.
type WideResult struct {
	// CapturedW holds the per-net lane blocks sampled at the capture
	// instant: K consecutive words per net, CapturedW[id·K+j] bit b =
	// net id's value under pattern j·64+b.
	CapturedW []uint64
	// EnergyFJ is the per-lane energy of the chunk (length K·64):
	// lane L's switching before capture plus leakage over Tclk,
	// bit-identical to the EnergyFJ a 64-lane StepWordChunk of word j
	// reports for bit b.
	EnergyFJ []float64
	// LateW flags lanes with at least one post-capture transition,
	// one word per lane word (length K).
	LateW []uint64
}

// WideEngine is the K-word generalization of WordEngine: net state is
// a flat block of K consecutive uint64 words per net (valueW[id·K+j]
// bit b = net id's value under pattern j·64+b), one event wave serves
// K·64 patterns, and one event fires per any-lane-any-word change.
// Scheduled output blocks live in a per-chunk arena so the calendar
// queue's payload stays a fixed 32 bytes at every K.
//
// Per lane the schedule is exactly the scalar (and therefore the
// 64-lane word) schedule: gate delays are data-independent at a fixed
// operating point, so lane L's transition times, captured values and
// energy-accumulation order do not depend on which other lanes share
// its event carriers — word j of a wide chunk is bit-identical to a
// StepWordChunk of the same 64 patterns. Re-evaluation is lazy per
// word: a touch only re-evaluates the words whose input words
// actually changed (the firing event's changed-word mask), which
// keeps the per-event cost proportional to activity rather than to K.
// Not safe for concurrent use.
type WideEngine struct {
	nl  *netlist.Netlist
	lib *cell.Library
	op  fdsoi.OperatingPoint

	*tables

	k          int
	valueW     []uint64 // NumNets·K current lane blocks
	scheduledW []uint64 // NumGates·K last scheduled output blocks
	arena      []uint64 // scheduled blocks referenced by in-flight events
	queue      calQueue[wideRef]
	seq        uint64
	now        float64
	// curParent is the index of the effective event being processed,
	// recorded into pushes as their retime parent (-1 while the t = 0
	// input switch seeds the wave).
	curParent int32

	laneEnergy []float64 // K·64

	res WideResult

	// trace and slotOf back StepWideTrace (widetrace.go); t2 and
	// retimed back RetimeTrace/ResampleAt.
	trace   WideTrace
	slotOf  []int32
	t2      []float64
	retimed WideTrace

	stats                    Stats
	retimeOK, retimeFallback uint64
}

// NewWide builds a K-word wide engine for nl at operating point op.
// k must be in [1, MaxWideWords]; k = 1 degenerates to the 64-lane
// word engine's geometry (one word per net).
func NewWide(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, op fdsoi.OperatingPoint, k int) (*WideEngine, error) {
	if k < 1 || k > MaxWideWords {
		return nil, fmt.Errorf("sim: wide block of %d words outside [1, %d]", k, MaxWideWords)
	}
	e := &WideEngine{
		nl:         nl,
		lib:        lib,
		op:         op,
		tables:     compileTables(nl, lib, proc, op),
		k:          k,
		valueW:     make([]uint64, nl.NumNets()*k),
		scheduledW: make([]uint64, nl.NumGates()*k),
		laneEnergy: make([]float64, WordLanes*k),
	}
	// K words merge K times the word engine's event density into one
	// queue; scale the bucket fineness with K to stay in the cheap
	// small-sort regime (purely a performance knob, like
	// wordQueueFineness).
	e.queue.init(e.minDelay, e.maxDelay, wordQueueFineness*float64(k))
	return e, nil
}

// Netlist returns the simulated netlist.
func (e *WideEngine) Netlist() *netlist.Netlist { return e.nl }

// OperatingPoint returns the engine's electrical operating point.
func (e *WideEngine) OperatingPoint() fdsoi.OperatingPoint { return e.op }

// K returns the engine's lane-block width in words.
func (e *WideEngine) K() int { return e.k }

// Stats returns the accumulated statistics; counts are per-lane, as in
// WordEngine, and every chunk books K·64 steps and lane-leakage terms.
func (e *WideEngine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated statistics.
func (e *WideEngine) ResetStats() { e.stats = Stats{} }

// RetimeStats reports the cross-voltage reuse outcomes since the last
// reset: ok counts order-stable retimes served from a recorded trace,
// fallbacks counts order-check rejections (the caller re-simulated).
func (e *WideEngine) RetimeStats() (ok, fallbacks uint64) {
	return e.retimeOK, e.retimeFallback
}

// touch re-evaluates the changed words of a gate's lane block after an
// input event and schedules an output event when any re-evaluated
// word's target differs from the last scheduled block. words is the
// changed-word mask of the firing event (bit j = word j changed);
// unchanged words cannot have moved — every input-word change fires a
// touch carrying that word — so skipping them is exact, not a
// heuristic.
func (e *WideEngine) touch(gi netlist.GateID, words uint64) {
	k := e.k
	a := int(e.in0[gi]) * k
	b := int(e.in1[gi]) * k
	c := int(e.in2[gi]) * k
	s := int(gi) * k
	kind := e.kinds[gi]
	changed := false
	for m := words; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		w := kind.EvalWord(e.valueW[a+j], e.valueW[b+j], e.valueW[c+j])
		if w != e.scheduledW[s+j] {
			e.scheduledW[s+j] = w
			changed = true
		}
	}
	if !changed {
		return
	}
	slot := int32(len(e.arena) / k)
	e.arena = append(e.arena, e.scheduledW[s:s+k]...)
	e.seq++
	e.queue.push(qev[wideRef]{
		time:    e.now + e.gateDelay[gi],
		seq:     e.seq,
		payload: wideRef{gate: gi, slot: slot, parent: e.curParent},
	})
}

// settle instantly settles every lane on its predecessor block and
// seeds the scheduled blocks, the shared preamble of StepWideChunk and
// StepWideTrace.
func (e *WideEngine) settle(prev []uint64) error {
	k := e.k
	for _, id := range e.inputNets {
		copy(e.valueW[int(id)*k:int(id)*k+k], prev[int(id)*k:int(id)*k+k])
	}
	if err := e.nl.EvaluateWide(e.valueW, k); err != nil {
		return err
	}
	for gi := range e.gateOut {
		copy(e.scheduledW[gi*k:gi*k+k], e.valueW[int(e.gateOut[gi])*k:int(e.gateOut[gi])*k+k])
	}
	e.queue.clear()
	e.arena = e.arena[:0]
	e.now = 0
	e.curParent = -1
	for i := range e.laneEnergy {
		e.laneEnergy[i] = 0
	}
	return nil
}

// StepWideChunk runs K·64 independent two-vector timing experiments
// through one event wave: lane L settles instantly on prev's lane-L
// input bits, switches to cur's at t = 0, is captured at t = tclk, and
// then settles to quiescence. prev and cur are flat per-net lane-block
// images (K consecutive words per net, indexed id·K+j). A ragged final
// chunk leaves its unused lanes equal in both images — they launch no
// events and are ignored in the result.
//
// The returned WideResult is owned by the engine and valid until the
// next call; a steady-state sweep allocates nothing here.
func (e *WideEngine) StepWideChunk(prev, cur []uint64, tclk float64) (*WideResult, error) {
	if !(tclk > 0) { // negated to catch NaN, which popIfBefore would misread
		return nil, fmt.Errorf("sim: non-positive tclk %v", tclk)
	}
	k := e.k
	if len(prev) != len(e.valueW) || len(cur) != len(e.valueW) {
		return nil, fmt.Errorf("sim: lane images have %d/%d entries, want %d",
			len(prev), len(cur), len(e.valueW))
	}
	if err := e.settle(prev); err != nil {
		return nil, err
	}
	res := &e.res
	if cap(res.LateW) < k {
		res.LateW = make([]uint64, k)
	}
	res.LateW = res.LateW[:k]
	for j := range res.LateW {
		res.LateW[j] = 0
	}
	// Switch the inputs to the current vectors and seed the wave; nets
	// are visited in the scalar applyInputs order and words ascending,
	// so each lane's input-energy accumulation order matches the
	// 64-lane path of its word exactly.
	for _, id := range e.inputNets {
		base := int(id) * k
		var words uint64
		ie := e.inputEnergy[id]
		for j := 0; j < k; j++ {
			nv := cur[base+j]
			d := e.valueW[base+j] ^ nv
			if d == 0 {
				continue
			}
			e.valueW[base+j] = nv
			words |= 1 << uint(j)
			lb := j * WordLanes
			for ; d != 0; d &= d - 1 {
				e.laneEnergy[lb+bits.TrailingZeros64(d)] += ie
			}
		}
		if words == 0 {
			continue
		}
		for _, fo := range e.foList[e.foOff[id]:e.foOff[id+1]] {
			e.touch(fo, words)
		}
	}
	// Phase 1: events up to the capture edge.
	for {
		ev, ok := e.queue.popIfBefore(tclk)
		if !ok {
			break
		}
		e.now = ev.time
		gi := ev.payload.gate
		out := int(e.gateOut[gi]) * k
		pay := e.arena[int(ev.payload.slot)*k : int(ev.payload.slot)*k+k]
		var words uint64
		ge := e.gateEnergy[gi]
		for j := 0; j < k; j++ {
			d := e.valueW[out+j] ^ pay[j]
			if d == 0 {
				continue
			}
			e.valueW[out+j] = pay[j]
			words |= 1 << uint(j)
			e.stats.Transitions += uint64(bits.OnesCount64(d))
			lb := j * WordLanes
			for ; d != 0; d &= d - 1 {
				e.laneEnergy[lb+bits.TrailingZeros64(d)] += ge
			}
		}
		if words == 0 {
			continue
		}
		for _, fo := range e.foList[e.foOff[out/k]:e.foOff[out/k+1]] {
			e.touch(fo, words)
		}
	}
	res.CapturedW = append(res.CapturedW[:0], e.valueW...)
	// Phase 2: post-capture settling; transitions here are late.
	for {
		ev, ok := e.queue.popMin()
		if !ok {
			break
		}
		e.now = ev.time
		gi := ev.payload.gate
		out := int(e.gateOut[gi]) * k
		pay := e.arena[int(ev.payload.slot)*k : int(ev.payload.slot)*k+k]
		var words uint64
		for j := 0; j < k; j++ {
			d := e.valueW[out+j] ^ pay[j]
			if d == 0 {
				continue
			}
			e.valueW[out+j] = pay[j]
			words |= 1 << uint(j)
			n := uint64(bits.OnesCount64(d))
			e.stats.Transitions += n
			e.stats.LateTransitions += n
			res.LateW[j] |= d
		}
		if words == 0 {
			continue
		}
		for _, fo := range e.foList[e.foOff[out/k]:e.foOff[out/k+1]] {
			e.touch(fo, words)
		}
	}
	leak := e.leakPower * tclk
	res.EnergyFJ = res.EnergyFJ[:0]
	var dyn float64
	for _, le := range e.laneEnergy {
		res.EnergyFJ = append(res.EnergyFJ, le+leak)
		dyn += le
	}
	e.stats.DynamicEnergy += dyn
	e.stats.LeakageEnergy += leak * float64(WordLanes*k)
	e.stats.Steps += uint64(WordLanes * k)
	e.now = 0
	return res, nil
}
