package sim_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// packWideChunks packs chained 64-lane word chunks into flat K-word
// lane-block images, k word chunks per wide chunk. A ragged final wide
// chunk zero-fills its missing words in both images, so they are inert.
func packWideChunks(nl *netlist.Netlist, chunks [][2][]uint64, k int) (wide [][2][]uint64) {
	nets := nl.NumNets()
	for base := 0; base < len(chunks); base += k {
		prevW := make([]uint64, nets*k)
		curW := make([]uint64, nets*k)
		for j := 0; j < k && base+j < len(chunks); j++ {
			c := chunks[base+j]
			for id := 0; id < nets; id++ {
				prevW[id*k+j] = c[0][id]
				curW[id*k+j] = c[1][id]
			}
		}
		wide = append(wide, [2][]uint64{prevW, curW})
	}
	return wide
}

// TestWideChunkMatchesWordChunk is the wide-lane parity argument: a
// K-word StepWideChunk must be bit-identical, word for word, to K
// independent 64-lane StepWordChunk calls — captured nets, per-lane
// energy bits, late masks — for every K, including a ragged final block
// whose trailing words are zero-filled.
func TestWideChunkMatchesWordChunk(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	mm := fdsoi.NewMismatchSampler(0.03, 23)
	nl, err := synth.NewAdder(synth.ArchBKA, synth.AdderConfig{Width: 16, Mismatch: mm})
	if err != nil {
		t.Fatal(err)
	}
	// 150 patterns = 2 full word chunks + a ragged 22-lane tail: at
	// K = 2 the second wide chunk is a ragged 1-word block, at K = 4
	// and 8 the single wide chunk carries zero-filled trailing words.
	chunks, _ := traceChunks(nl, 0xffff, 150, 41)
	ops := []fdsoi.OperatingPoint{
		{Vdd: 1.0, Vbb: 0},
		{Vdd: 0.55, Vbb: 2},
	}
	tclks := []float64{0.05, 0.25, 0.8}
	for _, k := range []int{2, 4, 8} {
		wide := packWideChunks(nl, chunks, k)
		for _, op := range ops {
			t.Run(fmt.Sprintf("k%d/%.2fV/%.0fbb", k, op.Vdd, op.Vbb), func(t *testing.T) {
				weng, err := sim.NewWide(nl, lib, proc, op, k)
				if err != nil {
					t.Fatal(err)
				}
				word := sim.NewWord(nl, lib, proc, op)
				for wc, c := range wide {
					for _, tclk := range tclks {
						wres, err := weng.StepWideChunk(c[0], c[1], tclk)
						if err != nil {
							t.Fatal(err)
						}
						for j := 0; j < k; j++ {
							ci := wc*k + j
							if ci >= len(chunks) {
								// Zero-filled trailing word: no activity, no
								// late lanes, pure leakage energy.
								if wres.LateW[j] != 0 {
									t.Fatalf("k %d word %d: zero-filled word has late lanes %x", k, j, wres.LateW[j])
								}
								continue
							}
							sres, err := word.StepWordChunk(chunks[ci][0], chunks[ci][1], tclk)
							if err != nil {
								t.Fatal(err)
							}
							for id := 0; id < nl.NumNets(); id++ {
								if wres.CapturedW[id*k+j] != sres.CapturedW[id] {
									t.Fatalf("k %d chunk %d tclk %v net %d: wide %x, word %x",
										k, ci, tclk, id, wres.CapturedW[id*k+j], sres.CapturedW[id])
								}
							}
							if wres.LateW[j] != sres.LateW {
								t.Fatalf("k %d chunk %d tclk %v: wide late %x, word late %x",
									k, ci, tclk, wres.LateW[j], sres.LateW)
							}
							for b := 0; b < sim.WordLanes; b++ {
								wf, sf := wres.EnergyFJ[j*sim.WordLanes+b], sres.EnergyFJ[b]
								if math.Float64bits(wf) != math.Float64bits(sf) {
									t.Fatalf("k %d chunk %d tclk %v lane %d: wide energy %v, word %v",
										k, ci, tclk, b, wf, sf)
								}
							}
						}
					}
				}
			})
		}
	}
}

// checkWideResampleMatchesChunk requires a wide trace's resample at tclk
// to be bit-identical to a direct StepWideChunk at the same tclk.
func checkWideResampleMatchesChunk(t *testing.T, direct *sim.WideEngine, sample *sim.WideSample,
	outNets []netlist.NetID, prev, cur []uint64, tclk float64) {
	t.Helper()
	k := direct.K()
	wres, err := direct.StepWideChunk(prev, cur, tclk)
	if err != nil {
		t.Fatal(err)
	}
	for s, id := range outNets {
		for j := 0; j < k; j++ {
			if sample.CapturedW[s*k+j] != wres.CapturedW[int(id)*k+j] {
				t.Fatalf("tclk %v net %d word %d: resampled %x, direct %x",
					tclk, id, j, sample.CapturedW[s*k+j], wres.CapturedW[int(id)*k+j])
			}
		}
	}
	for l := range sample.EnergyFJ {
		if math.Float64bits(sample.EnergyFJ[l]) != math.Float64bits(wres.EnergyFJ[l]) {
			t.Fatalf("tclk %v lane %d: resampled energy %v, direct %v",
				tclk, l, sample.EnergyFJ[l], wres.EnergyFJ[l])
		}
	}
	for j := 0; j < k; j++ {
		if sample.LateW[j] != wres.LateW[j] {
			t.Fatalf("tclk %v word %d: resampled late %x, direct %x",
				tclk, j, sample.LateW[j], wres.LateW[j])
		}
	}
}

// TestWideTraceResampleMatchesWideChunk: one horizon-capped
// StepWideTrace, resampled at every clock of a grid, must be
// bit-identical to direct StepWideChunk calls — and must reject
// deadlines beyond the capture horizon.
func TestWideTraceResampleMatchesWideChunk(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	mm := fdsoi.NewMismatchSampler(0.03, 31)
	nl, err := synth.NewAdder(synth.ArchRCA, synth.AdderConfig{Width: 8, Mismatch: mm})
	if err != nil {
		t.Fatal(err)
	}
	outNets := traceOutNets(nl)
	chunks, _ := traceChunks(nl, 0xff, 150, 7)
	const k = 2
	wide := packWideChunks(nl, chunks, k)
	tclks := []float64{0.02, 0.1, 0.3, 0.45}
	horizon := 0.45
	for _, op := range []fdsoi.OperatingPoint{{Vdd: 1.0, Vbb: 0}, {Vdd: 0.5, Vbb: 2}} {
		tracer, err := sim.NewWide(nl, lib, proc, op, k)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sim.NewWide(nl, lib, proc, op, k)
		if err != nil {
			t.Fatal(err)
		}
		var sample sim.WideSample
		for _, c := range wide {
			trace, err := tracer.StepWideTrace(c[0], c[1], outNets, horizon)
			if err != nil {
				t.Fatal(err)
			}
			for _, tclk := range tclks {
				if err := trace.Resample(tclk, &sample); err != nil {
					t.Fatal(err)
				}
				checkWideResampleMatchesChunk(t, direct, &sample, outNets, c[0], c[1], tclk)
			}
			if err := trace.Resample(math.Nextafter(horizon, math.Inf(1)), &sample); err == nil {
				t.Fatal("deadline beyond the capture horizon accepted")
			}
		}
	}
}

// TestCrossVddResampleMatchesFresh is the cross-voltage reuse parity
// argument: over a (Vdd, Tclk) grid on both paper adders, every retime
// ResampleAt accepts must be bit-identical to a fresh StepWideTrace +
// Resample at the target operating point, and every rejection must be
// a counted fallback. Without per-gate mismatch the delay map is
// uniform up to quantization, and the quantized+dithered delay grid
// keeps even the Brent-Kung fabric's degenerate reconvergent paths
// order-stable, so every retime on the grid must succeed for both
// adders (the fallback valve itself is pinned by
// TestRetimeOrderFallback under strong mismatch).
func TestCrossVddResampleMatchesFresh(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	for _, ad := range []struct {
		arch  synth.Arch
		width int
		mask  uint64
	}{
		{synth.ArchRCA, 8, 0xff},
		{synth.ArchBKA, 16, 0xffff},
	} {
		nl, err := synth.NewAdder(ad.arch, synth.AdderConfig{Width: ad.width})
		if err != nil {
			t.Fatal(err)
		}
		outNets := traceOutNets(nl)
		chunks, _ := traceChunks(nl, ad.mask, 2*sim.WordLanes, 61)
		const k = 2
		wide := packWideChunks(nl, chunks, k)
		c := wide[0]
		const vbb = 2.0
		src, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 1.0, Vbb: vbb}, k)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 8.0
		srcTrace, err := src.StepWideTrace(c[0], c[1], outNets, horizon)
		if err != nil {
			t.Fatal(err)
		}
		tclks := []float64{0.05, 0.2, 0.5, 1.5, 6.0}
		var okTotal, fbTotal uint64
		for _, vdd := range []float64{0.9, 0.7, 0.5, 0.4} {
			op := fdsoi.OperatingPoint{Vdd: vdd, Vbb: vbb}
			t.Run(fmt.Sprintf("%s%d/%.2fV", ad.arch, ad.width, vdd), func(t *testing.T) {
				target, err := sim.NewWide(nl, lib, proc, op, k)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := sim.NewWide(nl, lib, proc, op, k)
				if err != nil {
					t.Fatal(err)
				}
				freshTrace, err := fresh.StepWideTrace(c[0], c[1], outNets, horizon)
				if err != nil {
					t.Fatal(err)
				}
				var got, want sim.WideSample
				for _, tclk := range tclks {
					okBefore, fbBefore := target.RetimeStats()
					ok, err := target.ResampleAt(srcTrace, tclk, &got)
					if err != nil {
						t.Fatal(err)
					}
					okAfter, fbAfter := target.RetimeStats()
					if !ok {
						t.Fatalf("tclk %v: uniform-delay retime rejected", tclk)
					}
					if okAfter != okBefore+1 || fbAfter != fbBefore {
						t.Fatalf("tclk %v: accepted retime not counted (ok %d→%d, fb %d→%d)",
							tclk, okBefore, okAfter, fbBefore, fbAfter)
					}
					if err := freshTrace.Resample(tclk, &want); err != nil {
						t.Fatal(err)
					}
					for i := range want.CapturedW {
						if got.CapturedW[i] != want.CapturedW[i] {
							t.Fatalf("tclk %v slot word %d: retimed %x, fresh %x",
								tclk, i, got.CapturedW[i], want.CapturedW[i])
						}
					}
					for l := range want.EnergyFJ {
						if math.Float64bits(got.EnergyFJ[l]) != math.Float64bits(want.EnergyFJ[l]) {
							t.Fatalf("tclk %v lane %d: retimed energy %v, fresh %v",
								tclk, l, got.EnergyFJ[l], want.EnergyFJ[l])
						}
					}
					for j := range want.LateW {
						if got.LateW[j] != want.LateW[j] {
							t.Fatalf("tclk %v word %d: retimed late %x, fresh %x",
								tclk, j, got.LateW[j], want.LateW[j])
						}
					}
				}
				ok, fb := target.RetimeStats()
				okTotal += ok
				fbTotal += fb
				if ok == 0 || fb != 0 {
					t.Fatalf("retime stats ok=%d fallbacks=%d, want all-ok", ok, fb)
				}
			})
		}
		if okTotal == 0 || fbTotal != 0 {
			t.Fatalf("%s%d: grid retime stats ok=%d fb=%d, want all-ok", ad.arch, ad.width, okTotal, fbTotal)
		}
	}
}

// TestRetimeOrderFallback crafts an order flip: with strong per-gate
// threshold mismatch the sub-knee delay map does not rescale uniformly
// across a deep Vdd drop, so some recorded event pair must reorder and
// RetimeTrace must reject the wave (counting a fallback) rather than
// retime it — the correctness valve the grouped sweep relies on.
func TestRetimeOrderFallback(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	mm := fdsoi.NewMismatchSampler(0.12, 5)
	nl, err := synth.NewAdder(synth.ArchBKA, synth.AdderConfig{Width: 16, Mismatch: mm})
	if err != nil {
		t.Fatal(err)
	}
	outNets := traceOutNets(nl)
	chunks, _ := traceChunks(nl, 0xffff, sim.WordLanes, 13)
	const k = 1
	wide := packWideChunks(nl, chunks, k)
	c := wide[0]
	src, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 1.0, Vbb: 0}, k)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := src.StepWideTrace(c[0], c[1], outNets, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := uint64(0)
	for _, vdd := range []float64{0.8, 0.6, 0.5, 0.45, 0.4} {
		eng, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: vdd, Vbb: 0}, k)
		if err != nil {
			t.Fatal(err)
		}
		var dst sim.WideTrace
		if _, err := eng.RetimeTrace(trace, 8.0, &dst); err != nil {
			t.Fatal(err)
		}
		_, fb := eng.RetimeStats()
		fallbacks += fb
	}
	if fallbacks == 0 {
		t.Fatal("no retime fallback across a deep mismatched Vdd drop; the order check never fired")
	}
}

// TestWideValidation pins the wide path's error behavior.
func TestWideValidation(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	nl, err := synth.RCA(synth.AdderConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	op := fdsoi.OperatingPoint{Vdd: 1.0}
	if _, err := sim.NewWide(nl, lib, proc, op, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := sim.NewWide(nl, lib, proc, op, sim.MaxWideWords+1); err == nil {
		t.Fatal("k beyond MaxWideWords accepted")
	}
	const k = 2
	eng, err := sim.NewWide(nl, lib, proc, op, k)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]uint64, nl.NumNets()*k)
	if _, err := eng.StepWideChunk(lanes[:1], lanes, 0.5); err == nil {
		t.Fatal("short prev image accepted")
	}
	if _, err := eng.StepWideChunk(lanes, lanes[:1], 0.5); err == nil {
		t.Fatal("short cur image accepted")
	}
	if _, err := eng.StepWideChunk(lanes, lanes, math.NaN()); err == nil {
		t.Fatal("NaN tclk accepted")
	}
	if _, err := eng.StepWideTrace(lanes, lanes, nil, 0); err == nil {
		t.Fatal("non-positive horizon accepted")
	}
	if _, err := eng.StepWideTrace(lanes, lanes, []netlist.NetID{1, 1}, 1.0); err == nil {
		t.Fatal("duplicate tracked net accepted")
	}
	trace, err := eng.StepWideTrace(lanes, lanes, []netlist.NetID{1, 2}, 1.0)
	if err != nil {
		t.Fatal("tracked set rejected after duplicate error:", err)
	}
	var sample sim.WideSample
	if err := trace.Resample(0, &sample); err == nil {
		t.Fatal("non-positive tclk accepted")
	}
	if err := trace.Resample(2.0, &sample); err == nil {
		t.Fatal("deadline beyond the horizon accepted")
	}
	var dst sim.WideTrace
	k1 := e2Trace(t, nl, lib, proc)
	if _, err := eng.RetimeTrace(&k1, 1.0, &dst); err == nil {
		t.Fatal("retime across lane widths accepted")
	}
	if _, err := eng.RetimeTrace(trace, 1.0, trace); err == nil {
		t.Fatal("retime into its own source accepted")
	}
	if _, err := eng.RetimeTrace(trace, math.NaN(), &dst); err == nil {
		t.Fatal("NaN retime horizon accepted")
	}
	if ok, err := eng.RetimeTrace(trace, 1.0, &dst); err != nil || !ok {
		t.Fatalf("same-op retime rejected: ok=%v err=%v", ok, err)
	}
	var dst2 sim.WideTrace
	if _, err := eng.RetimeTrace(&dst, 1.0, &dst2); err == nil {
		t.Fatal("retimed (resample-only) trace accepted as a retime source")
	}
}

// e2Trace builds a k=1 trace so TestWideValidation can exercise the
// lane-width mismatch guard against the k=2 engine.
func e2Trace(t *testing.T, nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params) sim.WideTrace {
	t.Helper()
	eng, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]uint64, nl.NumNets())
	tr, err := eng.StepWideTrace(lanes, lanes, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return *tr
}

// TestWideSteadyStateAllocs: after warm-up, a wide trace step, its
// resamples, a cross-voltage retime and the retimed resample must not
// allocate — the engines own the trace and retime buffers, the caller
// owns the sample. The RCA is used because its retimes are
// order-stable (the retime must succeed for the retimed-resample leg
// to be exercised).
func TestWideSteadyStateAllocs(t *testing.T) {
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	nl, err := synth.RCA(synth.AdderConfig{Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	outNets := traceOutNets(nl)
	chunks, _ := traceChunks(nl, 0xffff, 4*sim.WordLanes, 9)
	const k = 2
	wide := packWideChunks(nl, chunks, k)
	src, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 1.0, Vbb: 0}, k)
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.NewWide(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.8, Vbb: 0}, k)
	if err != nil {
		t.Fatal(err)
	}
	var sample sim.WideSample
	var retimed sim.WideTrace
	step := func(c [2][]uint64) {
		trace, err := src.StepWideTrace(c[0], c[1], outNets, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for _, tclk := range []float64{0.2, 0.45} {
			if err := trace.Resample(tclk, &sample); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := target.RetimeTrace(trace, 0.6, &retimed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("uniform-delay retime rejected")
		}
		if err := retimed.Resample(0.3, &sample); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range wide {
		step(c) // warm up engine- and caller-owned buffers
	}
	if allocs := testing.AllocsPerRun(50, func() {
		for _, c := range wide {
			step(c)
		}
	}); allocs > 0 {
		t.Errorf("steady-state wide step allocates %.1f times per run, want 0", allocs)
	}
}
