package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// wideOut is one tracked net's value change in a wide trace: the
// capture-boundary walk needs (time, slot); ev is the effective-event
// index the change rode on, which is what lets a retime re-stamp the
// change at another operating point's time. The changed block itself
// lives at outWords[i·K : i·K+K] for outs[i].
type wideOut struct {
	time float64
	slot int32
	ev   int32
}

// widePrefixStride is the boundary interval between stored per-lane
// energy-prefix snapshots in a wide trace. Wide snapshots are K times a
// word trace's row (K·64 floats), so the stride is coarser than
// tracePrefixStride: capture pays fewer row copies, resamples replay at
// most stride−1 boundaries' charge records. Purely a performance knob —
// replay re-applies identical additions in identical order, so any
// value yields bit-identical resamples.
const widePrefixStride = 64

// WideTrace is the captured outcome of one StepWideTrace call: the full
// event history of a K×64-lane two-vector experiment run to quiescence
// at one electrical operating point. Beyond the word trace's
// deadline-ready layout (times/evEnd boundaries, energy prefix
// snapshots, suffix late masks, tracked-net out events), it records the
// retime log — per effective event its firing gate and causal parent,
// plus the t = 0 input-toggle set — which is what RetimeTrace needs to
// re-stamp the wave at a neighboring Vdd without re-simulating.
//
// Energy attribution is capped by a capture horizon: per-lane charge
// attribution and prefix snapshots are only maintained for events at
// t ≤ horizon, and Resample rejects deadlines beyond it. Deep-VOS
// operating points place almost every event after their largest clock
// period, so the horizon turns the dominant per-lane attribution work
// into a no-op there; the event history itself (order, gates, parents,
// diffs) is always recorded in full, so a horizon-capped trace is still
// a complete retime source.
//
// A trace produced by StepWideTrace is owned by the engine and valid
// until the next StepWideTrace call; a trace filled by RetimeTrace
// aliases the source's operating-point-independent arrays and is valid
// only while the source is.
type WideTrace struct {
	k         int
	op        fdsoi.OperatingPoint
	horizon   float64
	leakPower float64
	// full marks an engine-recorded trace whose boundary log covers the
	// entire wave — the only kind RetimeTrace accepts as a source. A
	// retimed trace collapses its post-horizon boundaries into one OR
	// (it only ever answers Resample calls at tclk ≤ horizon) and is
	// not a valid retime source.
	full bool

	// start holds, per tracked slot, the net's K-word lane block at
	// t = 0⁺ (after the input switch).
	start []uint64
	// base holds the K·64 per-lane input-pin switching energies charged
	// at t = 0.
	base []float64

	times []float64 // distinct event timestamps, ascending
	evEnd []int32   // per timestamp: end index (exclusive) into the event log

	// The per-effective-event log, chronological. gates[i] fired the
	// event, parent[i] is the effective event during whose processing it
	// was pushed (-1 = t = 0 input switch), energy[i] its per-changed-lane
	// switching energy at op, diffs[i·K : i·K+K] its changed-lane block.
	gates  []netlist.GateID
	parent []int32
	energy []float64
	diffs  []uint64

	prefix []float64 // flat K·64 energy snapshots at boundaries 0, stride, 2·stride, … within the horizon
	orAt   []uint64  // per boundary: K-word OR of its events' changed-lane blocks
	suffix []uint64  // per boundary: K-word OR of every later changed-lane block
	// lateAll is the OR of every changed-lane block — the late mask of a
	// deadline before the first event.
	lateAll []uint64

	outs     []wideOut
	outWords []uint64 // K words per out event, aligned with outs

	// The t = 0 input-toggle log in applyInputs order: which input nets
	// toggled and their changed-lane blocks. A retime replays it against
	// the target operating point's input-pin energies to rebuild base.
	inTogIDs   []netlist.NetID
	inTogDiffs []uint64
}

// K returns the trace's lane-block width in words.
func (t *WideTrace) K() int { return t.k }

// OperatingPoint returns the electrical point the trace is timed at.
func (t *WideTrace) OperatingPoint() fdsoi.OperatingPoint { return t.op }

// Horizon returns the capture horizon: the largest deadline Resample
// can answer from this trace.
func (t *WideTrace) Horizon() float64 { return t.horizon }

// Events returns the number of distinct event timestamps in the trace.
func (t *WideTrace) Events() int { return len(t.times) }

// EventTimes appends the trace's distinct event timestamps to buf and
// returns it.
func (t *WideTrace) EventTimes(buf []float64) []float64 {
	return append(buf, t.times...)
}

// StepWideTrace runs the K×64-lane two-vector experiment of
// StepWideChunk to full quiescence with no capture deadline, recording
// the event history instead of splitting it at a Tclk. tracked lists
// the nets whose captured values resamples must report; horizon is the
// largest deadline the trace must answer (math.Inf(1) for unlimited) —
// per-lane energy attribution and prefix snapshots stop past it, the
// event/retime log does not.
//
// One trace serves every clock period ≤ horizon at the operating point
// via Resample, bit-identical to StepWideChunk at the same tclk, and
// doubles as the source wave for RetimeTrace at neighboring operating
// points. The returned trace is owned by the engine and valid until
// the next call; a steady-state sweep allocates nothing here.
func (e *WideEngine) StepWideTrace(prev, cur []uint64, tracked []netlist.NetID, horizon float64) (*WideTrace, error) {
	if !(horizon > 0) { // negated to catch NaN
		return nil, fmt.Errorf("sim: non-positive trace horizon %v", horizon)
	}
	k := e.k
	if len(prev) != len(e.valueW) || len(cur) != len(e.valueW) {
		return nil, fmt.Errorf("sim: lane images have %d/%d entries, want %d",
			len(prev), len(cur), len(e.valueW))
	}
	if e.slotOf == nil {
		e.slotOf = make([]int32, e.nl.NumNets())
		for i := range e.slotOf {
			e.slotOf[i] = -1
		}
	}
	for _, id := range tracked {
		if int(id) < 0 || int(id) >= len(e.slotOf) {
			return nil, fmt.Errorf("sim: tracked net %d outside netlist", id)
		}
	}
	// Untrack on every exit so a failed call cannot poison the next one.
	defer func() {
		for _, id := range tracked {
			e.slotOf[id] = -1
		}
	}()
	for s, id := range tracked {
		if e.slotOf[id] >= 0 {
			return nil, fmt.Errorf("sim: net %d tracked twice", id)
		}
		e.slotOf[id] = int32(s)
	}
	if err := e.settle(prev); err != nil {
		return nil, err
	}
	tr := &e.trace
	tr.k = k
	tr.op = e.op
	tr.horizon = horizon
	tr.leakPower = e.leakPower
	tr.full = true
	tr.times = tr.times[:0]
	tr.evEnd = tr.evEnd[:0]
	tr.gates = tr.gates[:0]
	tr.parent = tr.parent[:0]
	tr.energy = tr.energy[:0]
	tr.diffs = tr.diffs[:0]
	tr.prefix = tr.prefix[:0]
	tr.orAt = tr.orAt[:0]
	tr.outs = tr.outs[:0]
	tr.outWords = tr.outWords[:0]
	tr.inTogIDs = tr.inTogIDs[:0]
	tr.inTogDiffs = tr.inTogDiffs[:0]
	// Switch the inputs to the current vectors and seed the wave,
	// logging the toggle set; nets are visited in the scalar applyInputs
	// order and words ascending, so per-lane base-energy accumulation
	// order matches the non-trace paths — and a retime replaying the
	// same log against another op's pin energies matches that op's.
	var dblk [MaxWideWords]uint64
	for _, id := range e.inputNets {
		base := int(id) * k
		var words uint64
		for j := 0; j < k; j++ {
			d := e.valueW[base+j] ^ cur[base+j]
			dblk[j] = d
			if d != 0 {
				words |= 1 << uint(j)
			}
		}
		if words == 0 {
			continue
		}
		ie := e.inputEnergy[id]
		for j := 0; j < k; j++ {
			d := dblk[j]
			if d == 0 {
				continue
			}
			e.valueW[base+j] = cur[base+j]
			lb := j * WordLanes
			for ; d != 0; d &= d - 1 {
				e.laneEnergy[lb+bits.TrailingZeros64(d)] += ie
			}
		}
		tr.inTogIDs = append(tr.inTogIDs, id)
		tr.inTogDiffs = append(tr.inTogDiffs, dblk[:k]...)
		for _, fo := range e.foList[e.foOff[id]:e.foOff[id+1]] {
			e.touch(fo, words)
		}
	}
	tr.base = append(tr.base[:0], e.laneEnergy...)
	// Snapshot the tracked nets after the input switch.
	tr.start = tr.start[:0]
	for _, id := range tracked {
		tr.start = append(tr.start, e.valueW[int(id)*k:int(id)*k+k]...)
	}
	// Run the wave dry in (time, seq) order, one boundary per distinct
	// event time. Attribution (per-lane energy adds, prefix snapshots)
	// stops past the horizon; the event log never does.
	var curOr [MaxWideWords]uint64
	curTime := 0.0
	open := false
	flush := func() {
		if len(tr.times)%widePrefixStride == 0 && curTime <= horizon {
			tr.prefix = append(tr.prefix, e.laneEnergy...)
		}
		tr.times = append(tr.times, curTime)
		tr.evEnd = append(tr.evEnd, int32(len(tr.gates)))
		tr.orAt = append(tr.orAt, curOr[:k]...)
		for j := 0; j < k; j++ {
			curOr[j] = 0
		}
	}
	for {
		ev, ok := e.queue.popMin()
		if !ok {
			break
		}
		e.now = ev.time
		gi := ev.payload.gate
		outNet := int(e.gateOut[gi])
		out := outNet * k
		pay := e.arena[int(ev.payload.slot)*k : int(ev.payload.slot)*k+k]
		var words uint64
		for j := 0; j < k; j++ {
			d := e.valueW[out+j] ^ pay[j]
			dblk[j] = d
			if d != 0 {
				words |= 1 << uint(j)
			}
		}
		if words == 0 {
			continue // squashed: inert at every operating point
		}
		if !open || ev.time != curTime {
			if open {
				flush()
			}
			curTime, open = ev.time, true
		}
		attribute := ev.time <= horizon
		ge := e.gateEnergy[gi]
		for j := 0; j < k; j++ {
			d := dblk[j]
			if d == 0 {
				continue
			}
			e.valueW[out+j] = pay[j]
			curOr[j] |= d
			e.stats.Transitions += uint64(bits.OnesCount64(d))
			if attribute {
				lb := j * WordLanes
				for ; d != 0; d &= d - 1 {
					e.laneEnergy[lb+bits.TrailingZeros64(d)] += ge
				}
			}
		}
		evIdx := int32(len(tr.gates))
		tr.gates = append(tr.gates, gi)
		tr.parent = append(tr.parent, ev.payload.parent)
		tr.energy = append(tr.energy, ge)
		tr.diffs = append(tr.diffs, dblk[:k]...)
		if slot := e.slotOf[outNet]; slot >= 0 {
			tr.outs = append(tr.outs, wideOut{time: ev.time, slot: slot, ev: evIdx})
			tr.outWords = append(tr.outWords, pay...)
		}
		e.curParent = evIdx
		for _, fo := range e.foList[e.foOff[outNet]:e.foOff[outNet+1]] {
			e.touch(fo, words)
		}
	}
	if open {
		flush()
	}
	e.curParent = -1
	// Late masks are K-word suffix ORs over the boundaries.
	nb := len(tr.times)
	if cap(tr.suffix) < nb*k {
		tr.suffix = make([]uint64, nb*k)
	}
	tr.suffix = tr.suffix[:nb*k]
	var acc [MaxWideWords]uint64
	for i := nb - 1; i >= 0; i-- {
		copy(tr.suffix[i*k:i*k+k], acc[:k])
		for j := 0; j < k; j++ {
			acc[j] |= tr.orAt[i*k+j]
		}
	}
	tr.lateAll = append(tr.lateAll[:0], acc[:k]...)
	e.stats.Steps += uint64(WordLanes * k)
	e.now = 0
	return tr, nil
}

// WideSample is one Tclk's view of a WideTrace, produced by Resample.
// CapturedW is indexed by tracked slot times K (the order of the
// tracked argument to StepWideTrace). The struct is caller-owned;
// Resample reuses its buffers, so a steady-state sweep allocates
// nothing here.
type WideSample struct {
	// CapturedW holds the tracked nets' lane blocks at the capture
	// instant: bit b of CapturedW[s·K+j] is tracked net s's value under
	// pattern j·64+b.
	CapturedW []uint64
	// EnergyFJ is the K·64 per-lane energy at this clock, bit-identical
	// to a StepWideChunk (and per word to a StepWordChunk) at the same
	// Tclk.
	EnergyFJ []float64
	// LateW flags lanes with at least one post-capture transition, one
	// word per lane word.
	LateW []uint64
}

// Resample answers one clock period from the trace, exactly as
// WordTrace.Resample does per word: captured blocks are the tracked
// nets' last values at time ≤ tclk, lane energy is the nearest stored
// prefix snapshot plus a bounded charge replay (identical additions in
// identical order — bit-identical to StepWideChunk at the same tclk)
// plus leakage, and the late mask is the boundary's suffix OR. tclk
// must not exceed the trace's capture horizon.
func (t *WideTrace) Resample(tclk float64, s *WideSample) error {
	if !(tclk > 0) { // negated to catch NaN
		return fmt.Errorf("sim: non-positive tclk %v", tclk)
	}
	if tclk > t.horizon {
		return fmt.Errorf("sim: tclk %v beyond trace capture horizon %v", tclk, t.horizon)
	}
	k := t.k
	// idx: the last boundary with times[idx] ≤ tclk, or -1.
	lo, hi := 0, len(t.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.times[mid] <= tclk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	idx := lo - 1
	if idx >= 0 {
		snap := idx / widePrefixStride
		row := WordLanes * k
		s.EnergyFJ = append(s.EnergyFJ[:0], t.prefix[snap*row:(snap+1)*row]...)
		for i := t.evEnd[snap*widePrefixStride]; i < t.evEnd[idx]; i++ {
			ge := t.energy[i]
			blk := t.diffs[int(i)*k : int(i)*k+k]
			for j := 0; j < k; j++ {
				lb := j * WordLanes
				for d := blk[j]; d != 0; d &= d - 1 {
					s.EnergyFJ[lb+bits.TrailingZeros64(d)] += ge
				}
			}
		}
		s.LateW = append(s.LateW[:0], t.suffix[idx*k:(idx+1)*k]...)
	} else {
		s.EnergyFJ = append(s.EnergyFJ[:0], t.base...)
		s.LateW = append(s.LateW[:0], t.lateAll...)
	}
	leak := t.leakPower * tclk
	for i := range s.EnergyFJ {
		s.EnergyFJ[i] += leak
	}
	s.CapturedW = append(s.CapturedW[:0], t.start...)
	for i := range t.outs {
		o := &t.outs[i]
		if o.time > tclk {
			break // chronological: every later event is late too
		}
		copy(s.CapturedW[int(o.slot)*k:int(o.slot)*k+k], t.outWords[i*k:i*k+k])
	}
	return nil
}

// RetimeTrace re-times src's recorded wave at this engine's operating
// point without re-simulating, filling dst. It first re-derives every
// effective event's firing time under the engine's delay table —
// exactly the floats a fresh simulation computes, since a pushed
// event's time is always its parent's firing time plus the gate delay
// — and checks that the recorded order survives: non-decreasing
// overall, strictly increasing across distinct source timestamps
// (equal retimed times are only safe within one source timestamp,
// where the recorded order is already the seq order equal-time pops
// resolve to). If the order holds, the retimed wave is the fresh
// simulation's wave, event for event — same pushes in the same
// relative order, same squash pattern, same per-lane accumulation
// sequences — and dst is rebuilt from the log (boundaries, energy
// prefixes within horizon, suffix masks, out events, input-toggle base
// energy), bit-identical to a fresh StepWideTrace at this op. If any
// event pair would reorder, it reports false with dst unspecified and
// the caller must fall back to fresh simulation; RetimeStats counts
// both outcomes. The order check alone is an early-aborting O(events)
// pass, so a rejected retime costs almost nothing.
//
// dst aliases src's operating-point-independent arrays (event log,
// diffs, start blocks), so it is valid only while src is. dst is
// resample-only: its post-horizon boundaries are collapsed into one
// accumulated late mask (a Resample at tclk ≤ horizon never selects
// them individually), which makes retiming a deep-VOS point — where
// nearly the whole wave lands past the horizon — an almost pure
// order-check. The source must therefore be a fresh engine-recorded
// trace; chains hop fresh-anchor → point, not point → point.
func (e *WideEngine) RetimeTrace(src *WideTrace, horizon float64, dst *WideTrace) (bool, error) {
	if src.k != e.k {
		return false, fmt.Errorf("sim: retime across lane widths %d vs %d", src.k, e.k)
	}
	if src == dst {
		return false, fmt.Errorf("sim: retime source and destination must differ")
	}
	if !src.full {
		return false, fmt.Errorf("sim: retime source must be a fresh engine trace (retimed traces are resample-only)")
	}
	if !(horizon > 0) { // negated to catch NaN
		return false, fmt.Errorf("sim: non-positive trace horizon %v", horizon)
	}
	n := len(src.gates)
	if cap(e.t2) < n {
		e.t2 = make([]float64, n)
	}
	t2 := e.t2[:n]
	// Pass 1: retimed firing times + order check. Early abort on the
	// first violation keeps a failed check nearly free.
	prevT2 := 0.0
	bi := 0
	prevBi := -1
	for i := 0; i < n; i++ {
		for bi < len(src.evEnd) && int32(i) >= src.evEnd[bi] {
			bi++
		}
		pt := 0.0
		if p := src.parent[i]; p >= 0 {
			pt = t2[p]
		}
		ti := pt + e.gateDelay[src.gates[i]]
		t2[i] = ti
		if i > 0 && (ti < prevT2 || (ti == prevT2 && bi != prevBi)) {
			e.retimeFallback++
			return false, nil
		}
		prevT2, prevBi = ti, bi
	}
	// Pass 2: rebuild dst at this op. Op-independent structure aliases
	// src; op-dependent parts (times, energies, prefixes) are rebuilt
	// with the same accumulation order a fresh simulation uses.
	k := e.k
	dst.k = k
	dst.op = e.op
	dst.horizon = horizon
	dst.leakPower = e.leakPower
	dst.full = false
	dst.start = src.start
	dst.gates = src.gates
	dst.parent = src.parent
	dst.diffs = src.diffs
	dst.outWords = src.outWords
	dst.inTogIDs = src.inTogIDs
	dst.inTogDiffs = src.inTogDiffs
	// Base energy: replay the t = 0 toggle log against this op's
	// input-pin energies, in the recorded (applyInputs) order. The
	// engine's lane accumulator doubles as scratch — no simulation is
	// in flight during a retime.
	lane := e.laneEnergy
	for i := range lane {
		lane[i] = 0
	}
	for t, id := range src.inTogIDs {
		ie := e.inputEnergy[id]
		blk := src.inTogDiffs[t*k : t*k+k]
		for j := 0; j < k; j++ {
			lb := j * WordLanes
			for d := blk[j]; d != 0; d &= d - 1 {
				lane[lb+bits.TrailingZeros64(d)] += ie
			}
		}
	}
	dst.base = append(dst.base[:0], lane...)
	if cap(dst.energy) < n {
		dst.energy = make([]float64, n)
	}
	dst.energy = dst.energy[:n]
	for i, g := range src.gates {
		dst.energy[i] = e.gateEnergy[g]
	}
	// Regroup boundaries by retimed time (a source boundary may split
	// when its events' retimed times differ; never merge — the order
	// check made cross-boundary times strictly increasing), attributing
	// energy and snapshotting prefixes within the horizon, with the
	// same boundary phase a fresh trace uses.
	dst.times = dst.times[:0]
	dst.evEnd = dst.evEnd[:0]
	dst.orAt = dst.orAt[:0]
	dst.prefix = dst.prefix[:0]
	var curOr [MaxWideWords]uint64
	curTime := 0.0
	open := false
	flush := func(end int32) {
		if len(dst.times)%widePrefixStride == 0 && curTime <= horizon {
			dst.prefix = append(dst.prefix, lane...)
		}
		dst.times = append(dst.times, curTime)
		dst.evEnd = append(dst.evEnd, end)
		dst.orAt = append(dst.orAt, curOr[:k]...)
		for j := 0; j < k; j++ {
			curOr[j] = 0
		}
	}
	i := 0
	for ; i < n; i++ {
		ti := t2[i]
		if ti > horizon {
			break // t2 is non-decreasing: everything from here is late
		}
		if !open || ti != curTime {
			if open {
				flush(int32(i))
			}
			curTime, open = ti, true
		}
		blk := src.diffs[i*k : i*k+k]
		ge := dst.energy[i]
		for j := 0; j < k; j++ {
			lb := j * WordLanes
			for d := blk[j]; d != 0; d &= d - 1 {
				lane[lb+bits.TrailingZeros64(d)] += ge
			}
		}
		for j := 0; j < k; j++ {
			curOr[j] |= blk[j]
		}
	}
	if open {
		flush(int32(i))
	}
	// Everything past the horizon collapses into one accumulated late
	// mask: no Resample ever selects a post-horizon boundary, so their
	// only observable contribution is this OR.
	var acc [MaxWideWords]uint64
	for ; i < n; i++ {
		blk := src.diffs[i*k : i*k+k]
		for j := 0; j < k; j++ {
			acc[j] |= blk[j]
		}
	}
	// Suffix late masks over the rebuilt boundaries, seeded with the
	// collapsed post-horizon mask.
	nb := len(dst.times)
	if cap(dst.suffix) < nb*k {
		dst.suffix = make([]uint64, nb*k)
	}
	dst.suffix = dst.suffix[:nb*k]
	for i := nb - 1; i >= 0; i-- {
		copy(dst.suffix[i*k:i*k+k], acc[:k])
		for j := 0; j < k; j++ {
			acc[j] |= dst.orAt[i*k+j]
		}
	}
	dst.lateAll = append(dst.lateAll[:0], acc[:k]...)
	// Out events re-stamped at their retimed event times; the recorded
	// order is preserved, so they stay chronological.
	dst.outs = dst.outs[:0]
	for _, o := range src.outs {
		dst.outs = append(dst.outs, wideOut{time: t2[o.ev], slot: o.slot, ev: o.ev})
	}
	e.retimeOK++
	return true, nil
}

// ResampleAt answers one (op, tclk) query from a trace recorded at a
// different operating point of the same netlist and lane width: it
// retimes src at the engine's op (order check included) and resamples
// the retimed wave at tclk. ok = false means the order check rejected
// the retime and the caller must fall back to fresh simulation. For
// repeated resampling at one op, call RetimeTrace once and Resample
// the result; ResampleAt retimes per call.
func (e *WideEngine) ResampleAt(src *WideTrace, tclk float64, s *WideSample) (bool, error) {
	if src.op == e.op {
		return true, src.Resample(tclk, s)
	}
	ok, err := e.RetimeTrace(src, src.horizon, &e.retimed)
	if err != nil || !ok {
		return ok, err
	}
	return true, e.retimed.Resample(tclk, s)
}
