package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// WordLanes is the pattern parallelism of the word engine: one uint64 net
// word carries one bit per concurrently simulated pattern.
const WordLanes = netlist.BatchLanes

// gateWord is the word engine's event payload: one scheduled 64-lane
// output word. The full event (qev[gateWord]) is 32 bytes.
type gateWord struct {
	word uint64
	gate netlist.GateID
}

// WordResult is the outcome of one 64-lane two-vector chunk. It is owned
// by the engine and valid until the next StepWordChunk call.
type WordResult struct {
	// CapturedW holds the per-net lane words sampled at the capture
	// instant: bit k of CapturedW[id] is net id's value under pattern k.
	// Output-port lane words can be read directly (gotBits[i] :=
	// CapturedW[port.Bits[i]]) — the captured image is already bit-sliced.
	CapturedW []uint64
	// EnergyFJ is the per-lane energy of the chunk: lane k's switching
	// before capture plus leakage over Tclk, bit-identical to the
	// EnergyFJ a scalar StepDense of pattern k reports.
	EnergyFJ [WordLanes]float64
	// LateW flags lanes with at least one post-capture transition.
	LateW uint64
}

// WordEngine is the 64-way bit-sliced variant of Engine: net state is one
// uint64 word per net, lane k of every word belonging to pattern k, and
// one event wave serves all 64 patterns. It shares the compiled tables
// (delays, energies, truth tables, CSR fanouts) with the scalar engine,
// evaluates gates with cell.Kind.EvalWord, and schedules an output event
// whenever any lane's target changes. Because gate delays are
// data-independent at a fixed operating point, lane k's transition times,
// captured values and energy accumulation order are exactly those of a
// scalar simulation of pattern k — the word path is an optimization, not
// a semantics change.
//
// The engine only implements the two-vector protocol: each lane's
// experiment starts from its own settled predecessor state, which is a
// pure (zero-delay) function of the predecessor vector and therefore
// batch-computable. The streaming protocol is temporally serial and stays
// on the scalar engine. Not safe for concurrent use.
type WordEngine struct {
	nl  *netlist.Netlist
	lib *cell.Library
	op  fdsoi.OperatingPoint

	*tables

	valueW     []uint64 // current per-net lane words
	scheduledW []uint64 // per gate: last scheduled output lane word
	queue      calQueue[gateWord]
	seq        uint64
	now        float64

	laneEnergy [WordLanes]float64

	res         WordResult
	capturedBuf []uint64

	// trace and slotOf back StepWordTrace (trace.go): the reusable event
	// history and the per-net tracked-slot map (-1 = untracked).
	trace  WordTrace
	slotOf []int32

	stats Stats
}

// Compile-time seam checks.
var (
	_ WordStepper = (*WordEngine)(nil)
	_ WordTracer  = (*WordEngine)(nil)
)

// wordQueueFineness narrows the word engine's calendar buckets relative
// to the scalar baseline. One word chunk merges 64 pattern waves, so a
// scalar-width bucket collects ~64× the events and pays quicksorts where
// the scalar engine pays nearly-free small insertion sorts; splitting the
// same time span across more buckets restores the small-sort regime.
// Purely a performance knob: pop order is (time, seq) at any fineness.
const wordQueueFineness = 8

// NewWord builds a word engine for nl at operating point op.
func NewWord(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, op fdsoi.OperatingPoint) *WordEngine {
	e := &WordEngine{
		nl:         nl,
		lib:        lib,
		op:         op,
		tables:     compileTables(nl, lib, proc, op),
		valueW:     make([]uint64, nl.NumNets()),
		scheduledW: make([]uint64, nl.NumGates()),
	}
	e.queue.init(e.minDelay, e.maxDelay, wordQueueFineness)
	return e
}

// Netlist returns the simulated netlist.
func (e *WordEngine) Netlist() *netlist.Netlist { return e.nl }

// OperatingPoint returns the engine's electrical operating point.
func (e *WordEngine) OperatingPoint() fdsoi.OperatingPoint { return e.op }

// Stats returns the accumulated statistics. Counts are per-lane: one
// fired word event contributes one transition per changed lane, so a
// chunk-aligned sweep's totals equal the scalar engine's. Every chunk
// books WordLanes steps and lane-leakage terms, so the inert tail lanes
// of a ragged final chunk are included in Steps and LeakageEnergy
// (results ignore those lanes; the diagnostics deliberately count what
// was simulated, which is always full words).
func (e *WordEngine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated statistics.
func (e *WordEngine) ResetStats() { e.stats = Stats{} }

// touch re-evaluates a gate across all 64 lanes after one of its input
// words changed and schedules an output event when any lane's target
// differs from the last scheduled word.
func (e *WordEngine) touch(gi netlist.GateID) {
	w := e.kinds[gi].EvalWord(e.valueW[e.in0[gi]], e.valueW[e.in1[gi]], e.valueW[e.in2[gi]])
	if w == e.scheduledW[gi] {
		return
	}
	e.scheduledW[gi] = w
	e.seq++
	e.queue.push(qev[gateWord]{
		time:    e.now + e.gateDelay[gi],
		seq:     e.seq,
		payload: gateWord{word: w, gate: gi},
	})
}

// StepWordChunk runs 64 independent two-vector timing experiments through
// one event wave: lane k settles instantly on prev's lane-k input bits,
// switches to cur's lane-k input bits at t = 0, is captured at t = tclk,
// and then settles to quiescence. prev and cur are dense per-net lane
// images indexed by netlist.NetID (bit k of entry id = net id's input
// value under pattern k; only primary-input entries are read, and input
// bits are boolean by construction).
//
// Lanes whose prev and cur input bits coincide launch no events and
// report pure-leakage energy; a ragged final chunk therefore simply
// leaves its unused lanes equal in both images and ignores them in the
// result.
//
// The returned WordResult is owned by the engine and valid until the next
// call; a steady-state sweep allocates nothing here.
func (e *WordEngine) StepWordChunk(prev, cur []uint64, tclk float64) (*WordResult, error) {
	if !(tclk > 0) { // negated to catch NaN, which popIfBefore would misread
		return nil, fmt.Errorf("sim: non-positive tclk %v", tclk)
	}
	if len(prev) != len(e.valueW) || len(cur) != len(e.valueW) {
		return nil, fmt.Errorf("sim: lane images have %d/%d entries, want %d",
			len(prev), len(cur), len(e.valueW))
	}
	// Settle every lane on its predecessor vector: the settled state of a
	// combinational netlist is its zero-delay steady state, so one
	// bit-sliced batch evaluation replaces 64 event-driven settles.
	for _, id := range e.inputNets {
		e.valueW[id] = prev[id]
	}
	if err := e.nl.EvaluateBatch(e.valueW); err != nil {
		return nil, err
	}
	for gi := range e.scheduledW {
		e.scheduledW[gi] = e.valueW[e.gateOut[gi]]
	}
	e.queue.clear()
	e.now = 0
	for k := range e.laneEnergy {
		e.laneEnergy[k] = 0
	}
	res := &e.res
	res.LateW = 0
	// Switch the inputs to the current vectors and seed the wave. Nets are
	// visited in the same order as the scalar applyInputs, so each lane's
	// input-energy accumulation order matches the scalar path exactly.
	for _, id := range e.inputNets {
		nv := cur[id]
		diff := e.valueW[id] ^ nv
		if diff == 0 {
			continue
		}
		e.valueW[id] = nv
		ie := e.inputEnergy[id]
		for d := diff; d != 0; d &= d - 1 {
			e.laneEnergy[bits.TrailingZeros64(d)] += ie
		}
		for _, fo := range e.foList[e.foOff[id]:e.foOff[id+1]] {
			e.touch(fo)
		}
	}
	// Phase 1: events up to the capture edge; energy is attributed to each
	// changed lane in event order, which per lane is the scalar firing
	// order.
	for {
		ev, ok := e.queue.popIfBefore(tclk)
		if !ok {
			break
		}
		e.now = ev.time
		out := e.gateOut[ev.payload.gate]
		diff := e.valueW[out] ^ ev.payload.word
		if diff == 0 {
			continue
		}
		e.valueW[out] = ev.payload.word
		e.stats.Transitions += uint64(bits.OnesCount64(diff))
		ge := e.gateEnergy[ev.payload.gate]
		for d := diff; d != 0; d &= d - 1 {
			e.laneEnergy[bits.TrailingZeros64(d)] += ge
		}
		for _, fo := range e.foList[e.foOff[out]:e.foOff[out+1]] {
			e.touch(fo)
		}
	}
	res.CapturedW = append(e.capturedBuf[:0], e.valueW...)
	e.capturedBuf = res.CapturedW
	// Phase 2: post-capture settling; transitions here are late and
	// charged to the next cycle, per lane.
	for {
		ev, ok := e.queue.popMin()
		if !ok {
			break
		}
		e.now = ev.time
		out := e.gateOut[ev.payload.gate]
		diff := e.valueW[out] ^ ev.payload.word
		if diff == 0 {
			continue
		}
		e.valueW[out] = ev.payload.word
		n := uint64(bits.OnesCount64(diff))
		e.stats.Transitions += n
		e.stats.LateTransitions += n
		res.LateW |= diff
		for _, fo := range e.foList[e.foOff[out]:e.foOff[out+1]] {
			e.touch(fo)
		}
	}
	leak := e.leakPower * tclk
	var dyn float64
	for k := range res.EnergyFJ {
		res.EnergyFJ[k] = e.laneEnergy[k] + leak
		dyn += e.laneEnergy[k]
	}
	e.stats.DynamicEnergy += dyn
	e.stats.LeakageEnergy += leak * WordLanes
	e.stats.Steps += WordLanes
	e.now = 0
	return res, nil
}
