package sim_test

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// wordCrossCheck drives the identical pattern stream through the scalar
// dense engine (one StepDense per pattern) and the word engine (one
// StepWordChunk per 64 patterns) and requires bit-identical captured
// values, energies and late flags per pattern — the parity property the
// word-parallel default path of the characterization flow rests on.
func wordCrossCheck(t *testing.T, nl *netlist.Netlist, op fdsoi.OperatingPoint, tclk float64, patterns int, seed uint64) {
	t.Helper()
	lib, proc := cell.Default28nmLVT(), fdsoi.Default()
	scalar := sim.New(nl, lib, proc, op)
	word := sim.NewWord(nl, lib, proc, op)

	stim := netlist.CompileStimulus(nl)
	slotA, slotB := stim.MustSlot(synth.PortA), stim.MustSlot(synth.PortB)
	if err := scalar.ResetDense(stim.Values()); err != nil {
		t.Fatal(err)
	}
	pa, _ := nl.InputPort(synth.PortA)
	pb, _ := nl.InputPort(synth.PortB)
	mask := uint64(1)<<uint(len(pa.Bits)) - 1

	rng := rand.New(rand.NewPCG(seed, 17))
	as := make([]uint64, patterns)
	bs := make([]uint64, patterns)
	for i := range as {
		as[i], bs[i] = rng.Uint64()&mask, rng.Uint64()&mask
	}

	// Scalar reference results, pattern by pattern.
	type scalarStep struct {
		captured []uint8
		energy   float64
		late     bool
	}
	refs := make([]scalarStep, patterns)
	for i := 0; i < patterns; i++ {
		stim.SetSlot(slotA, as[i])
		stim.SetSlot(slotB, bs[i])
		res, err := scalar.StepDense(stim.Values(), tclk)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = scalarStep{
			captured: append([]uint8(nil), res.Captured...),
			energy:   res.EnergyFJ,
			late:     res.Late,
		}
	}

	// Word engine, chunk by chunk (including a ragged final chunk when
	// patterns is not a multiple of 64).
	prevW := make([]uint64, nl.NumNets())
	curW := make([]uint64, nl.NumNets())
	for base := 0; base < patterns; base += sim.WordLanes {
		n := patterns - base
		if n > sim.WordLanes {
			n = sim.WordLanes
		}
		for id := range prevW {
			prevW[id], curW[id] = 0, 0
		}
		for k := 0; k < n; k++ {
			pA, pB := uint64(0), uint64(0)
			if i := base + k - 1; i >= 0 {
				pA, pB = as[i], bs[i]
			}
			netlist.AssignPortLane(prevW, pa, uint(k), pA)
			netlist.AssignPortLane(prevW, pb, uint(k), pB)
			netlist.AssignPortLane(curW, pa, uint(k), as[base+k])
			netlist.AssignPortLane(curW, pb, uint(k), bs[base+k])
		}
		wres, err := word.StepWordChunk(prevW, curW, tclk)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			ref := refs[base+k]
			for id := range ref.captured {
				if got := uint8(wres.CapturedW[id] >> uint(k) & 1); got != ref.captured[id] {
					t.Fatalf("pattern %d net %d: word captured %d, scalar %d",
						base+k, id, got, ref.captured[id])
				}
			}
			if got := wres.EnergyFJ[k]; got != ref.energy {
				t.Fatalf("pattern %d: word energy %v (bits %x), scalar %v (bits %x)",
					base+k, got, math.Float64bits(got), ref.energy, math.Float64bits(ref.energy))
			}
			if got := wres.LateW>>uint(k)&1 == 1; got != ref.late {
				t.Fatalf("pattern %d: word late %v, scalar %v", base+k, got, ref.late)
			}
		}
		// Lanes past a ragged end must stay inert: equal prev/cur inputs
		// mean pure-leakage energy and no late flag.
		leak := wres.EnergyFJ[sim.WordLanes-1]
		for k := n; k < sim.WordLanes; k++ {
			if wres.LateW>>uint(k)&1 == 1 {
				t.Fatalf("inert lane %d flagged late", k)
			}
			if wres.EnergyFJ[k] != leak && n < sim.WordLanes {
				t.Fatalf("inert lane %d energy %v, want leakage-only %v", k, wres.EnergyFJ[k], leak)
			}
		}
	}

	// The word engine's per-lane transition totals must equal the scalar
	// stream's.
	ss, ws := scalar.Stats(), word.Stats()
	if ss.Transitions != ws.Transitions || ss.LateTransitions != ws.LateTransitions {
		t.Fatalf("stats diverged: scalar %+v word %+v", ss, ws)
	}
}

// TestWordStepMatchesScalarDense sweeps a (Vdd, Tclk) grid from safely
// settled to deeply over-scaled (every capture mid-wave, plenty of late
// events) for both adder architectures, with per-gate mismatch so no two
// gate delays coincide exactly.
func TestWordStepMatchesScalarDense(t *testing.T) {
	archs := []struct {
		arch  synth.Arch
		width int
	}{
		{synth.ArchRCA, 8},
		{synth.ArchBKA, 8},
	}
	vdds := []float64{1.0, 0.7, 0.55}
	tclks := []float64{0.05, 0.12, 0.3, 2.0}
	for _, ad := range archs {
		mm := fdsoi.NewMismatchSampler(0.03, 7)
		nl, err := synth.NewAdder(ad.arch, synth.AdderConfig{Width: ad.width, Mismatch: mm})
		if err != nil {
			t.Fatal(err)
		}
		for _, vdd := range vdds {
			for _, tclk := range tclks {
				name := fmt.Sprintf("%s%d/%.2fV/%.2fns", ad.arch, ad.width, vdd, tclk)
				t.Run(name, func(t *testing.T) {
					// 130 patterns: two full chunks plus a ragged tail.
					wordCrossCheck(t, nl, fdsoi.OperatingPoint{Vdd: vdd, Vbb: 0}, tclk, 130, 11)
				})
			}
		}
	}
}

// TestWordStepValidation pins the word path's error behavior.
func TestWordStepValidation(t *testing.T) {
	nl, err := synth.RCA(synth.AdderConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewWord(nl, cell.Default28nmLVT(), fdsoi.Default(), fdsoi.OperatingPoint{Vdd: 1.0})
	lanes := make([]uint64, nl.NumNets())
	if _, err := eng.StepWordChunk(lanes, lanes, 0); err == nil {
		t.Fatal("non-positive tclk accepted")
	}
	if _, err := eng.StepWordChunk(lanes[:1], lanes, 0.5); err == nil {
		t.Fatal("short prev image accepted")
	}
	if _, err := eng.StepWordChunk(lanes, lanes[:1], 0.5); err == nil {
		t.Fatal("short cur image accepted")
	}
	if _, err := eng.StepWordChunk(lanes, lanes, 0.5); err != nil {
		t.Fatal(err)
	}
}
