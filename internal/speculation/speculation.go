// Package speculation implements the runtime half of the paper's proposal:
// dynamic approximation through operating-triad switching. Section V
// argues that, because VOS needs no design-level changes, an operator can
// hop between accurate and approximate modes at runtime; the BER needed to
// steer the hop is estimated with a dynamic-speculation / double-sampling
// scheme (the authors' earlier ISVLSI'16 work, ref [17]).
//
// The Governor drives a ladder of triad-bound operators ordered from
// cheapest (most error-prone) to most expensive (accurate). A shadow exact
// computation on every k-th operation — the software stand-in for a
// double-sampling register — feeds a sliding-window BER estimate. When the
// estimate exceeds the user's error margin the governor climbs to a safer
// triad; when it falls well below margin (hysteresis) and a cooldown has
// passed, it descends toward cheaper ones.
package speculation

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/triad"
)

// Operator is one rung of the triad ladder: a faulty adder pinned at an
// operating triad plus its characterized figures.
type Operator struct {
	Triad triad.Triad
	// Adder computes at this triad (timing-simulator oracle, statistical
	// model, or silicon).
	Adder core.HardwareAdder
	// EnergyPerOpFJ is the characterized mean energy per operation.
	EnergyPerOpFJ float64
	// CharBER is the characterized bit error rate, used to pick the
	// initial rung.
	CharBER float64
}

// Config tunes the governor.
type Config struct {
	// Margin is the user-definable BER tolerance (fraction of output
	// bits).
	Margin float64
	// Window is the sliding-window length in *checked* operations.
	Window int
	// CheckEvery samples one in k operations with a shadow exact
	// computation (k = 1 checks every op). The paper's speculation window
	// hardware plays this role on silicon.
	CheckEvery int
	// Hysteresis in (0, 1): descend only when the windowed BER is below
	// Margin·Hysteresis. Prevents oscillation at the boundary.
	Hysteresis float64
	// CooldownOps is the minimum number of operations between triad
	// switches.
	CooldownOps int
}

// DefaultConfig returns a reasonable governor tuning for a margin.
func DefaultConfig(margin float64) Config {
	return Config{
		Margin:      margin,
		Window:      256,
		CheckEvery:  4,
		Hysteresis:  0.25,
		CooldownOps: 512,
	}
}

func (c Config) validate() error {
	switch {
	case c.Margin < 0 || c.Margin >= 1:
		return fmt.Errorf("speculation: margin %v outside [0, 1)", c.Margin)
	case c.Window < 1:
		return errors.New("speculation: window must be ≥ 1")
	case c.CheckEvery < 1:
		return errors.New("speculation: CheckEvery must be ≥ 1")
	case c.Hysteresis <= 0 || c.Hysteresis >= 1:
		return errors.New("speculation: hysteresis must lie in (0, 1)")
	case c.CooldownOps < 0:
		return errors.New("speculation: negative cooldown")
	}
	return nil
}

// Switch records one triad change.
type Switch struct {
	Op   uint64 // operation index at which the switch happened
	From triad.Triad
	To   triad.Triad
	// EstBER is the windowed estimate that triggered the switch.
	EstBER float64
	// Up is true when the governor moved to a safer (higher-energy) rung.
	Up bool
}

// Governor steers a ladder of operators under an error margin.
type Governor struct {
	cfg   Config
	ops   []Operator
	width int

	cur       int
	opCount   uint64
	lastCheck uint64
	lastSwap  uint64

	// Sliding window over checked ops: bit-error counts.
	window []int
	wsum   int
	wpos   int
	wfill  int

	energy   metrics.EnergyAccumulator
	observed *metrics.ErrorAccumulator
	switches []Switch
}

// New builds a governor over the operator ladder. Operators are sorted by
// energy ascending; the governor starts at the cheapest rung whose
// characterized BER fits within the margin.
func New(ops []Operator, cfg Config) (*Governor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, errors.New("speculation: empty operator ladder")
	}
	width := ops[0].Adder.Width()
	for _, o := range ops {
		if o.Adder == nil {
			return nil, errors.New("speculation: nil adder")
		}
		if o.Adder.Width() != width {
			return nil, fmt.Errorf("speculation: mixed widths %d and %d", width, o.Adder.Width())
		}
	}
	sorted := make([]Operator, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].EnergyPerOpFJ < sorted[j].EnergyPerOpFJ
	})
	g := &Governor{
		cfg:      cfg,
		ops:      sorted,
		width:    width,
		cur:      len(sorted) - 1, // safest by default
		window:   make([]int, cfg.Window),
		observed: metrics.NewErrorAccumulator(width + 1),
	}
	for i, o := range sorted {
		if o.CharBER <= cfg.Margin {
			g.cur = i
			break
		}
	}
	return g, nil
}

// Current returns the active rung.
func (g *Governor) Current() Operator { return g.ops[g.cur] }

// Switches returns the switch trace.
func (g *Governor) Switches() []Switch { return g.switches }

// Ops returns the number of operations executed.
func (g *Governor) Ops() uint64 { return g.opCount }

// MeanEnergyFJ returns the charged mean energy per operation.
func (g *Governor) MeanEnergyFJ() float64 { return g.energy.MeanFJ() }

// ObservedBER returns the ground-truth BER over all executed operations
// (available here because the harness knows the exact results; silicon
// would only see the windowed estimate).
func (g *Governor) ObservedBER() float64 { return g.observed.BER() }

// EstimatedBER returns the current windowed estimate.
func (g *Governor) EstimatedBER() float64 {
	if g.wfill == 0 {
		return 0
	}
	return float64(g.wsum) / float64(g.wfill*(g.width+1))
}

// Add executes one addition on the active rung, updating the estimate and
// possibly switching triads.
func (g *Governor) Add(a, b uint64) uint64 {
	op := g.ops[g.cur]
	got := op.Adder.Add(a, b)
	g.energy.Add(op.EnergyPerOpFJ)
	exact := core.ExactAdder{W: g.width}.Add(a, b)
	g.observed.Add(exact, got)
	g.opCount++

	if g.opCount-g.lastCheck >= uint64(g.cfg.CheckEvery) {
		g.lastCheck = g.opCount
		// Shadow comparison (double-sampling surrogate): cost of the
		// check is the safest rung's energy for one op.
		errBits := metrics.Hamming(exact, got, g.width+1)
		g.pushWindow(errBits)
		g.maybeSwitch()
	}
	return got
}

func (g *Governor) pushWindow(errBits int) {
	g.wsum -= g.window[g.wpos]
	g.window[g.wpos] = errBits
	g.wsum += errBits
	g.wpos = (g.wpos + 1) % len(g.window)
	if g.wfill < len(g.window) {
		g.wfill++
	}
}

func (g *Governor) maybeSwitch() {
	if g.wfill < len(g.window)/2 {
		return // not enough evidence yet
	}
	if g.opCount-g.lastSwap < uint64(g.cfg.CooldownOps) {
		return
	}
	est := g.EstimatedBER()
	switch {
	case est > g.cfg.Margin && g.cur < len(g.ops)-1:
		g.swap(g.cur+1, est, true)
	case est < g.cfg.Margin*g.cfg.Hysteresis && g.cur > 0:
		// Only descend if the cheaper rung's characterized BER is not
		// hopeless for the margin.
		if g.ops[g.cur-1].CharBER <= g.cfg.Margin*4 {
			g.swap(g.cur-1, est, false)
		}
	}
}

func (g *Governor) swap(to int, est float64, up bool) {
	g.switches = append(g.switches, Switch{
		Op:     g.opCount,
		From:   g.ops[g.cur].Triad,
		To:     g.ops[to].Triad,
		EstBER: est,
		Up:     up,
	})
	g.cur = to
	g.lastSwap = g.opCount
	// Reset the window: evidence from the old triad does not describe the
	// new one.
	for i := range g.window {
		g.window[i] = 0
	}
	g.wsum, g.wpos, g.wfill = 0, 0, 0
}

// Trace summarizes a governed run.
type Trace struct {
	Ops         uint64
	MeanEnergy  float64
	ObservedBER float64
	Switches    int
	Final       triad.Triad
}

// Run drives n operand pairs from next() through the governor.
func (g *Governor) Run(n int, next func() (uint64, uint64)) Trace {
	for i := 0; i < n; i++ {
		a, b := next()
		g.Add(a, b)
	}
	return Trace{
		Ops:         g.opCount,
		MeanEnergy:  g.MeanEnergyFJ(),
		ObservedBER: g.ObservedBER(),
		Switches:    len(g.switches),
		Final:       g.Current().Triad,
	}
}
