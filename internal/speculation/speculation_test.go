package speculation

import (
	"math/rand/v2"
	"testing"

	"repro/internal/carry"
	"repro/internal/core"
	"repro/internal/triad"
)

// noisyAdder is a synthetic rung: it truncates carry chains at `limit`
// with probability p (per op), else computes exactly.
type noisyAdder struct {
	width int
	limit int
	p     float64
	rng   *rand.Rand
}

func newNoisy(width, limit int, p float64, seed uint64) *noisyAdder {
	return &noisyAdder{width: width, limit: limit, p: p, rng: rand.New(rand.NewPCG(seed, 7))}
}

func (n *noisyAdder) Width() int { return n.width }
func (n *noisyAdder) Add(a, b uint64) uint64 {
	if n.rng.Float64() < n.p {
		return carry.LimitedAdd(a, b, n.width, n.limit)
	}
	return carry.ExactAdd(a, b, n.width)
}

// ladder builds a three-rung ladder: aggressive (errors), medium, exact.
func ladder(width int) []Operator {
	return []Operator{
		{
			Triad:         triad.Triad{Tclk: 0.13, Vdd: 0.4, Vbb: 2},
			Adder:         newNoisy(width, 1, 0.9, 1),
			EnergyPerOpFJ: 25,
			CharBER:       0.20,
		},
		{
			Triad:         triad.Triad{Tclk: 0.28, Vdd: 0.5, Vbb: 2},
			Adder:         newNoisy(width, 5, 0.2, 2),
			EnergyPerOpFJ: 48,
			CharBER:       0.02,
		},
		{
			Triad:         triad.Triad{Tclk: 0.5, Vdd: 1.0, Vbb: 0},
			Adder:         core.ExactAdder{W: width},
			EnergyPerOpFJ: 186,
			CharBER:       0,
		},
	}
}

func uniformPairs(width int, seed uint64) func() (uint64, uint64) {
	rng := rand.New(rand.NewPCG(seed, 3))
	mask := uint64(1)<<uint(width) - 1
	return func() (uint64, uint64) { return rng.Uint64() & mask, rng.Uint64() & mask }
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Margin: -0.1, Window: 8, CheckEvery: 1, Hysteresis: 0.5},
		{Margin: 1.0, Window: 8, CheckEvery: 1, Hysteresis: 0.5},
		{Margin: 0.1, Window: 0, CheckEvery: 1, Hysteresis: 0.5},
		{Margin: 0.1, Window: 8, CheckEvery: 0, Hysteresis: 0.5},
		{Margin: 0.1, Window: 8, CheckEvery: 1, Hysteresis: 0},
		{Margin: 0.1, Window: 8, CheckEvery: 1, Hysteresis: 1},
		{Margin: 0.1, Window: 8, CheckEvery: 1, Hysteresis: 0.5, CooldownOps: -1},
	}
	for i, cfg := range bad {
		if _, err := New(ladder(8), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(nil, DefaultConfig(0.1)); err == nil {
		t.Error("empty ladder accepted")
	}
	mixed := ladder(8)
	mixed[0].Adder = core.ExactAdder{W: 4}
	if _, err := New(mixed, DefaultConfig(0.1)); err == nil {
		t.Error("mixed widths accepted")
	}
}

func TestInitialRungRespectsMargin(t *testing.T) {
	// Tight margin: must start on the exact rung.
	g, err := New(ladder(8), DefaultConfig(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if g.Current().CharBER > 0.001 {
		t.Fatalf("initial rung BER %v above margin", g.Current().CharBER)
	}
	// Loose margin: must start on the cheapest rung.
	g, err = New(ladder(8), DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if g.Current().EnergyPerOpFJ != 25 {
		t.Fatalf("loose margin should pick cheapest rung, got %+v", g.Current())
	}
}

func TestGovernorHoldsMargin(t *testing.T) {
	cfg := DefaultConfig(0.05)
	g, err := New(ladder(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Run(30000, uniformPairs(8, 42))
	if tr.ObservedBER > 2.5*cfg.Margin {
		t.Fatalf("observed BER %v far above margin %v", tr.ObservedBER, cfg.Margin)
	}
	// It should still save energy versus the accurate rung.
	if tr.MeanEnergy >= 186 {
		t.Fatalf("no energy saving: %v fJ", tr.MeanEnergy)
	}
}

func TestGovernorEscalatesOffMarginRung(t *testing.T) {
	// Margin tighter than the cheap rungs can deliver: governor must end
	// on the exact rung.
	cfg := DefaultConfig(0.002)
	cfg.CooldownOps = 64
	cfg.Window = 64
	g, err := New(ladder(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force-start on the cheapest rung to watch it climb.
	g.cur = 0
	tr := g.Run(20000, uniformPairs(8, 43))
	if tr.Final.Vdd != 1.0 {
		t.Fatalf("governor did not escalate to accurate rung: final %+v after %d switches",
			tr.Final, tr.Switches)
	}
	if tr.Switches == 0 {
		t.Fatal("no switches recorded")
	}
	ups := 0
	for _, s := range g.Switches() {
		if s.Up {
			ups++
		}
	}
	if ups == 0 {
		t.Fatal("no upward switches")
	}
}

func TestGovernorDescendsWhenClean(t *testing.T) {
	// All rungs exact, margin loose: governor should migrate down to the
	// cheapest rung.
	ops := []Operator{
		{Triad: triad.Triad{Tclk: 0.13, Vdd: 0.4, Vbb: 2}, Adder: core.ExactAdder{W: 8}, EnergyPerOpFJ: 25, CharBER: 0.01},
		{Triad: triad.Triad{Tclk: 0.28, Vdd: 0.5, Vbb: 2}, Adder: core.ExactAdder{W: 8}, EnergyPerOpFJ: 48, CharBER: 0.001},
		{Triad: triad.Triad{Tclk: 0.5, Vdd: 1.0, Vbb: 0}, Adder: core.ExactAdder{W: 8}, EnergyPerOpFJ: 186, CharBER: 0},
	}
	cfg := DefaultConfig(0.05)
	cfg.CooldownOps = 128
	cfg.Window = 64
	g, err := New(ops, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.cur = 2 // start safe
	tr := g.Run(20000, uniformPairs(8, 44))
	if tr.Final.Vdd != 0.4 {
		t.Fatalf("governor did not descend: final %+v", tr.Final)
	}
	if tr.ObservedBER != 0 {
		t.Fatalf("exact rungs produced BER %v", tr.ObservedBER)
	}
}

func TestEstimatedBERTracksWindow(t *testing.T) {
	g, err := New(ladder(8), DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if g.EstimatedBER() != 0 {
		t.Fatal("empty window must estimate 0")
	}
	g.Run(5000, uniformPairs(8, 45))
	est := g.EstimatedBER()
	if est <= 0 || est > 1 {
		t.Fatalf("estimate %v out of range", est)
	}
}

func TestSwitchTraceConsistency(t *testing.T) {
	cfg := DefaultConfig(0.01)
	cfg.CooldownOps = 64
	cfg.Window = 64
	g, err := New(ladder(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.cur = 0
	g.Run(20000, uniformPairs(8, 46))
	for i, s := range g.Switches() {
		if s.From == s.To {
			t.Fatalf("switch %d is a no-op", i)
		}
		if s.Op == 0 {
			t.Fatalf("switch %d at op 0", i)
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(0.1).validate(); err != nil {
		t.Fatal(err)
	}
}
