// Package spicedeck exports gate-level netlists as SPICE decks — the
// artifact the paper's Fig. 4 flow hands to Eldo ("the output netlist is
// then simulated at transistor level using SPICE"). A user with a real
// 28nm PDK can drop the generated .sp file into Eldo/HSPICE/ngspice,
// replace the behavioural subcircuits with foundry cells, and re-run the
// characterization against silicon-calibrated models.
//
// Cells are emitted as behavioural subcircuits (switch-style pull-up/
// pull-down around the cell's boolean function via B-sources, plus the
// library's input capacitance and drive resistance), parameterized by the
// operating triad: supply VDD, body-bias VBN/VBP rails, and a PULSE-driven
// pattern source per input bit.
package spicedeck

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/triad"
)

// Options parameterize the exported testbench.
type Options struct {
	// Triad sets VDD and the body-bias rails; its clock becomes the
	// stimulus period.
	Triad triad.Triad
	// Patterns are the operand-pair stimuli applied at consecutive clock
	// edges (each entry assigns every primary input port, LSB-first per
	// port, ports in netlist order).
	Patterns [][]uint64
	// Title overrides the deck title line.
	Title string
}

// expr returns the boolean expression of a cell kind over SPICE node
// voltages v(in0), v(in1), v(in2), using 0.5*VDD thresholds.
func expr(k cell.Kind) string {
	in := func(i int) string {
		return fmt.Sprintf("(v(in%d) > 'vdd/2' ? 1 : 0)", i)
	}
	switch k {
	case cell.INV:
		return fmt.Sprintf("1 - %s", in(0))
	case cell.BUF:
		return in(0)
	case cell.NAND2:
		return fmt.Sprintf("1 - (%s * %s)", in(0), in(1))
	case cell.NOR2:
		return fmt.Sprintf("1 - min(%s + %s, 1)", in(0), in(1))
	case cell.AND2:
		return fmt.Sprintf("%s * %s", in(0), in(1))
	case cell.OR2:
		return fmt.Sprintf("min(%s + %s, 1)", in(0), in(1))
	case cell.XOR2:
		return fmt.Sprintf("(%s + %s == 1 ? 1 : 0)", in(0), in(1))
	case cell.XNOR2:
		return fmt.Sprintf("(%s + %s == 1 ? 0 : 1)", in(0), in(1))
	case cell.AOI21:
		return fmt.Sprintf("1 - min(%s + %s*%s, 1)", in(0), in(1), in(2))
	case cell.OAI21:
		return fmt.Sprintf("1 - %s*min(%s + %s, 1)", in(0), in(1), in(2))
	case cell.AO21:
		return fmt.Sprintf("min(%s + %s*%s, 1)", in(0), in(1), in(2))
	case cell.MAJ3:
		return fmt.Sprintf("(%s + %s + %s >= 2 ? 1 : 0)", in(0), in(1), in(2))
	default:
		return "0"
	}
}

// Write emits the deck.
func Write(w io.Writer, nl *netlist.Netlist, lib *cell.Library, opt Options) error {
	if err := opt.Triad.Validate(); err != nil {
		return err
	}
	if len(opt.Patterns) == 0 {
		return fmt.Errorf("spicedeck: no stimulus patterns")
	}
	inputBits := 0
	for _, p := range nl.Inputs {
		inputBits += len(p.Bits)
	}
	for i, pat := range opt.Patterns {
		if len(pat) != len(nl.Inputs) {
			return fmt.Errorf("spicedeck: pattern %d assigns %d ports, want %d",
				i, len(pat), len(nl.Inputs))
		}
	}
	bw := bufio.NewWriter(w)
	title := opt.Title
	if title == "" {
		title = fmt.Sprintf("repro VOS characterization deck: %s at %s", nl.Name, opt.Triad.Label())
	}
	fmt.Fprintf(bw, "* %s\n", title)
	fmt.Fprintf(bw, ".param vdd=%g\n.param vbb=%g\n.param tclk=%gn\n\n",
		opt.Triad.Vdd, opt.Triad.Vbb, opt.Triad.Tclk)
	fmt.Fprintf(bw, "vdd vdd 0 'vdd'\nvbn vbn 0 'vbb'\nvbp vbp 0 '-vbb'\n\n")

	// One behavioural subcircuit per cell kind used.
	kinds := make(map[cell.Kind]bool)
	for gi := range nl.Gates {
		kinds[nl.Gates[gi].Kind] = true
	}
	for k := cell.Kind(0); k < 32; k++ {
		if !kinds[k] {
			continue
		}
		c := lib.Cell(k)
		if c == nil {
			return fmt.Errorf("spicedeck: library lacks %v", k)
		}
		n := k.NumInputs()
		var pins []string
		for i := 0; i < n; i++ {
			pins = append(pins, fmt.Sprintf("in%d", i))
		}
		fmt.Fprintf(bw, ".subckt %s %s out vdd vbn vbp\n", strings.ToLower(k.String()), strings.Join(pins, " "))
		for i := 0; i < n; i++ {
			fmt.Fprintf(bw, "cin%d in%d 0 %gf\n", i, i, c.InputCap)
		}
		fmt.Fprintf(bw, "bout x 0 v='vdd*(%s)'\n", expr(k))
		fmt.Fprintf(bw, "rout x out %gk\n", c.DriveRes*1000) // ns/fF == kΩ·... documented scale
		fmt.Fprintf(bw, "cout out 0 1f\n")
		fmt.Fprintf(bw, ".ends %s\n\n", strings.ToLower(k.String()))
	}

	// Pattern sources: one PWL per input net.
	fmt.Fprintf(bw, "* stimulus: %d vectors at tclk intervals\n", len(opt.Patterns))
	portIdx := 0
	for _, p := range nl.Inputs {
		for bit, net := range p.Bits {
			fmt.Fprintf(bw, "v%s n%d 0 PWL(", sanitize(fmt.Sprintf("%s_%d", p.Name, bit)), net)
			for vi, pat := range opt.Patterns {
				level := "0"
				if pat[portIdx]>>uint(bit)&1 == 1 {
					level = "'vdd'"
				}
				t := float64(vi)
				if vi > 0 {
					fmt.Fprintf(bw, " %gn %s", t*opt.Triad.Tclk+0.001, level)
				}
				fmt.Fprintf(bw, " %gn %s", (t+1)*opt.Triad.Tclk, level)
			}
			fmt.Fprintf(bw, ")\n")
		}
		portIdx++
	}
	fmt.Fprintf(bw, "\n* gate instances\n")
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		var pins []string
		for _, in := range g.Inputs {
			pins = append(pins, fmt.Sprintf("n%d", in))
		}
		pins = append(pins, fmt.Sprintf("n%d", g.Output))
		fmt.Fprintf(bw, "x%d %s vdd vbn vbp %s\n", gi, strings.Join(pins, " "), strings.ToLower(g.Kind.String()))
	}
	fmt.Fprintf(bw, "\n* probes\n")
	for _, p := range nl.Outputs {
		for bit, net := range p.Bits {
			fmt.Fprintf(bw, ".probe v(n%d) $ %s[%d]\n", net, p.Name, bit)
		}
	}
	fmt.Fprintf(bw, "\n.tran 1p %gn\n.end\n", float64(len(opt.Patterns))*opt.Triad.Tclk)
	return bw.Flush()
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
