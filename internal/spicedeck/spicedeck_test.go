package spicedeck

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/synth"
	"repro/internal/triad"
)

func deckFor(t *testing.T, width int, patterns [][]uint64) string {
	t.Helper()
	nl, err := synth.RCA(synth.AdderConfig{Width: width})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Write(&buf, nl, cell.Default28nmLVT(), Options{
		Triad:    triad.Triad{Tclk: 0.28, Vdd: 0.5, Vbb: 2},
		Patterns: patterns,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDeckStructure(t *testing.T) {
	deck := deckFor(t, 4, [][]uint64{{0xF, 0x1}, {0x3, 0x5}})
	// Balanced subcircuits.
	if o, e := strings.Count(deck, ".subckt"), strings.Count(deck, ".ends"); o != e || o == 0 {
		t.Fatalf("unbalanced subckts: %d vs %d", o, e)
	}
	// One instance per gate (4-bit RCA: 1 HA + 3 FA → 11 cells).
	if got := strings.Count(deck, "\nx"); got != 11 {
		t.Fatalf("instances = %d, want 11", got)
	}
	// Parameters carried through.
	for _, want := range []string{
		".param vdd=0.5", ".param vbb=2", ".param tclk=0.28n",
		"vbn vbn 0 'vbb'", "vbp vbp 0 '-vbb'",
		".tran 1p 0.56n", ".end",
	} {
		if !strings.Contains(deck, want) {
			t.Fatalf("deck missing %q", want)
		}
	}
	// Probes for every output bit (4 sums + cout).
	if got := strings.Count(deck, ".probe"); got != 5 {
		t.Fatalf("probes = %d, want 5", got)
	}
	// Every input bit gets a PWL source (8 operand bits).
	if got := strings.Count(deck, "PWL("); got != 8 {
		t.Fatalf("sources = %d, want 8", got)
	}
}

func TestDeckStimulusLevels(t *testing.T) {
	deck := deckFor(t, 4, [][]uint64{{0xF, 0x0}})
	// All a-bits high, all b-bits low in the single vector.
	for i := 0; i < 4; i++ {
		aLine := lineWith(t, deck, "va_"+string(rune('0'+i)))
		if !strings.Contains(aLine, "'vdd'") {
			t.Fatalf("a[%d] source not driven high: %s", i, aLine)
		}
		bLine := lineWith(t, deck, "vb_"+string(rune('0'+i)))
		if strings.Contains(bLine, "'vdd'") {
			t.Fatalf("b[%d] source driven high: %s", i, bLine)
		}
	}
}

func lineWith(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	t.Fatalf("no line starting with %q", prefix)
	return ""
}

func TestDeckValidation(t *testing.T) {
	nl, _ := synth.RCA(synth.AdderConfig{Width: 4})
	lib := cell.Default28nmLVT()
	var buf bytes.Buffer
	if err := Write(&buf, nl, lib, Options{
		Triad: triad.Triad{Tclk: 0.28, Vdd: 0.5}, Patterns: nil,
	}); err == nil {
		t.Fatal("empty patterns accepted")
	}
	if err := Write(&buf, nl, lib, Options{
		Triad: triad.Triad{Tclk: 0, Vdd: 0.5}, Patterns: [][]uint64{{1, 2}},
	}); err == nil {
		t.Fatal("invalid triad accepted")
	}
	if err := Write(&buf, nl, lib, Options{
		Triad: triad.Triad{Tclk: 0.28, Vdd: 0.5}, Patterns: [][]uint64{{1}},
	}); err == nil {
		t.Fatal("short pattern accepted")
	}
}

func TestAllKindsHaveExpressions(t *testing.T) {
	for _, k := range cell.Default28nmLVT().Kinds() {
		if e := expr(k); e == "0" {
			t.Errorf("kind %v has no behavioural expression", k)
		}
	}
}

func TestDeckCoversAllArchitectures(t *testing.T) {
	lib := cell.Default28nmLVT()
	for _, arch := range synth.Arches() {
		nl, err := synth.NewAdder(arch, synth.AdderConfig{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		err = Write(&buf, nl, lib, Options{
			Triad:    triad.Triad{Tclk: 0.3, Vdd: 0.6, Vbb: 2},
			Patterns: [][]uint64{{1, 2}, {200, 100}},
		})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if strings.Count(buf.String(), "\nx") != nl.NumGates() {
			t.Fatalf("%s: instance count mismatch", arch)
		}
	}
}
