// Package sta implements static timing analysis over gate-level netlists:
// per-net worst-case arrival times, critical-path extraction, and slack
// reports at arbitrary FDSOI operating points. It provides the "synthesis
// timing report" half of the paper's Fig. 4 flow and the clock-period
// sanity checks used by the characterization sweeps.
package sta

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// Analysis holds the result of one STA run.
type Analysis struct {
	// Arrival[net] is the worst-case settling time (ns) of each net after
	// an input transition at t = 0; primary inputs arrive at 0.
	Arrival []float64
	// GateDelay[gate] is the pin-to-pin delay (ns) used for each gate.
	GateDelay []float64
	// CriticalDelay is the largest arrival over all primary outputs (ns).
	CriticalDelay float64
	// CriticalNet is the primary-output net achieving CriticalDelay.
	CriticalNet netlist.NetID
}

// GateDelays computes the per-gate propagation delays (ns) of every gate in
// nl at operating point op, including per-instance threshold mismatch and
// load-dependent terms.
func GateDelays(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, op fdsoi.OperatingPoint) []float64 {
	d := make([]float64, nl.NumGates())
	loads := nl.NetLoads(lib)
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		c := lib.MustCell(g.Kind)
		d[gi] = c.Delay(loads[g.Output]) * proc.DelayScale(op, g.VtOffset)
	}
	return d
}

// Analyze runs STA on nl at the given operating point.
func Analyze(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, op fdsoi.OperatingPoint) *Analysis {
	a := &Analysis{
		Arrival:   make([]float64, nl.NumNets()),
		GateDelay: GateDelays(nl, lib, proc, op),
	}
	for _, gid := range nl.Topological() {
		g := &nl.Gates[gid]
		worst := 0.0
		for _, in := range g.Inputs {
			if t := a.Arrival[in]; t > worst {
				worst = t
			}
		}
		a.Arrival[g.Output] = worst + a.GateDelay[gid]
	}
	a.CriticalDelay = -1
	for _, p := range nl.Outputs {
		for _, b := range p.Bits {
			if t := a.Arrival[b]; t > a.CriticalDelay {
				a.CriticalDelay = t
				a.CriticalNet = b
			}
		}
	}
	return a
}

// CriticalPath walks back from the critical output and returns the gates on
// the longest path, input-side first.
func (a *Analysis) CriticalPath(nl *netlist.Netlist) []netlist.GateID {
	var path []netlist.GateID
	net := a.CriticalNet
	for {
		g := nl.Driver(net)
		if g == netlist.NoGate {
			break
		}
		path = append(path, g)
		// Choose the fanin whose arrival dominates.
		worst, worstNet := -1.0, netlist.NetID(-1)
		for _, in := range nl.Gates[g].Inputs {
			if a.Arrival[in] > worst {
				worst, worstNet = a.Arrival[in], in
			}
		}
		if worstNet < 0 {
			break
		}
		net = worstNet
	}
	// Reverse to input-side-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Slack returns Tclk minus the worst arrival of each output port bit.
func (a *Analysis) Slack(nl *netlist.Netlist, tclk float64) map[string][]float64 {
	s := make(map[string][]float64, len(nl.Outputs))
	for _, p := range nl.Outputs {
		v := make([]float64, len(p.Bits))
		for i, b := range p.Bits {
			v[i] = tclk - a.Arrival[b]
		}
		s[p.Name] = v
	}
	return s
}

// WorstNegativeSlack returns the most negative slack at tclk, or 0 if all
// outputs meet timing.
func (a *Analysis) WorstNegativeSlack(tclk float64) float64 {
	wns := tclk - a.CriticalDelay
	if wns > 0 {
		return 0
	}
	return wns
}

// MeetsTiming reports whether every output settles within tclk.
func (a *Analysis) MeetsTiming(tclk float64) bool {
	return a.CriticalDelay <= tclk
}

// MinClock performs a binary search for the smallest clock period (ns) at
// which the netlist meets timing at op — trivially CriticalDelay, exposed
// for symmetry with the characterization flow's use of real clocks.
func MinClock(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, op fdsoi.OperatingPoint) float64 {
	return Analyze(nl, lib, proc, op).CriticalDelay
}

// PathDelayHistogram buckets the arrival times of all primary outputs into
// n equal bins between 0 and the critical delay; useful to visualize how
// many near-critical paths an architecture has (RCA: few; BKA: many).
func (a *Analysis) PathDelayHistogram(nl *netlist.Netlist, bins int) []int {
	if bins <= 0 || a.CriticalDelay <= 0 {
		return nil
	}
	h := make([]int, bins)
	for _, p := range nl.Outputs {
		for _, b := range p.Bits {
			f := a.Arrival[b] / a.CriticalDelay
			idx := int(f * float64(bins))
			if idx >= bins {
				idx = bins - 1
			}
			h[idx]++
		}
	}
	return h
}

// CheckFinite validates that the analysis produced finite, non-negative
// arrivals (guards against broken operating points).
func (a *Analysis) CheckFinite() error {
	for i, t := range a.Arrival {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("sta: net %d has invalid arrival %v", i, t)
		}
	}
	return nil
}
