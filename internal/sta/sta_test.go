package sta_test

import (
	"math"
	"repro/internal/sta"
	"testing"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func chainNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain")
	a := b.InputBus("a", 2)
	x := b.Gate(cell.AND2, a[0], a[1])
	y := b.Gate(cell.INV, x)
	z := b.Gate(cell.OR2, y, a[0])
	b.OutputBus("o", []netlist.NetID{z})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestArrivalMatchesHandComputation(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl := chainNetlist(t)
	an := sta.Analyze(nl, lib, proc, proc.Nominal())

	and := lib.MustCell(cell.AND2)
	inv := lib.MustCell(cell.INV)
	or := lib.MustCell(cell.OR2)
	// Loads: AND2 output feeds INV; INV output feeds OR2; OR2 output is a
	// primary output (capture cap only).
	dAnd := and.Delay(lib.NetLoad([]float64{inv.InputCap}))
	dInv := inv.Delay(lib.NetLoad([]float64{or.InputCap}))
	dOr := or.Delay(lib.NetLoad(nil) + cell.CaptureCap)
	want := dAnd + dInv + dOr
	if math.Abs(an.CriticalDelay-want) > 1e-12 {
		t.Fatalf("critical delay = %v, want %v", an.CriticalDelay, want)
	}
}

func TestCriticalPathExtraction(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl := chainNetlist(t)
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	path := an.CriticalPath(nl)
	if len(path) != 3 {
		t.Fatalf("critical path length = %d, want 3", len(path))
	}
	// Input-side first: AND2, INV, OR2.
	kinds := []cell.Kind{cell.AND2, cell.INV, cell.OR2}
	for i, g := range path {
		if nl.Gates[g].Kind != kinds[i] {
			t.Fatalf("path[%d] = %s, want %s", i, nl.Gates[g].Kind, kinds[i])
		}
	}
}

func TestDelayGrowsAsVddDrops(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl, _ := synth.RCA(synth.AdderConfig{Width: 8})
	prev := 0.0
	for vdd := 1.0; vdd >= 0.4-1e-9; vdd -= 0.1 {
		an := sta.Analyze(nl, lib, proc, fdsoi.OperatingPoint{Vdd: vdd})
		if an.CriticalDelay <= prev {
			t.Fatalf("critical delay not increasing as Vdd drops: %v at %.1fV", an.CriticalDelay, vdd)
		}
		prev = an.CriticalDelay
	}
}

func TestForwardBodyBiasShortensCriticalPath(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl, _ := synth.RCA(synth.AdderConfig{Width: 8})
	noBias := sta.Analyze(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.5})
	fbb := sta.Analyze(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.5, Vbb: 2})
	if fbb.CriticalDelay >= noBias.CriticalDelay {
		t.Fatal("FBB did not shorten critical path")
	}
}

func TestSlackAndTiming(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl := chainNetlist(t)
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	tclk := an.CriticalDelay + 0.01
	if !an.MeetsTiming(tclk) {
		t.Fatal("should meet relaxed clock")
	}
	if an.MeetsTiming(an.CriticalDelay - 0.001) {
		t.Fatal("should fail tight clock")
	}
	if wns := an.WorstNegativeSlack(tclk); wns != 0 {
		t.Fatalf("WNS at relaxed clock = %v, want 0", wns)
	}
	if wns := an.WorstNegativeSlack(an.CriticalDelay - 0.01); math.Abs(wns+0.01) > 1e-9 {
		t.Fatalf("WNS = %v, want -0.01", wns)
	}
	slack := an.Slack(nl, tclk)
	if len(slack["o"]) != 1 || math.Abs(slack["o"][0]-0.01) > 1e-9 {
		t.Fatalf("slack = %v", slack)
	}
}

func TestMinClockEqualsCriticalDelay(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl := chainNetlist(t)
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	if got := sta.MinClock(nl, lib, proc, proc.Nominal()); got != an.CriticalDelay {
		t.Fatalf("MinClock = %v, want %v", got, an.CriticalDelay)
	}
}

func TestPathDelayHistogram(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	rca, _ := synth.RCA(synth.AdderConfig{Width: 16})
	bka, _ := synth.BKA(synth.AdderConfig{Width: 16})
	anR := sta.Analyze(rca, lib, proc, proc.Nominal())
	anB := sta.Analyze(bka, lib, proc, proc.Nominal())
	hr := anR.PathDelayHistogram(rca, 4)
	hb := anB.PathDelayHistogram(bka, 4)
	total := func(h []int) (n int) {
		for _, v := range h {
			n += v
		}
		return
	}
	if total(hr) != 17 || total(hb) != 17 {
		t.Fatalf("histograms must count 17 outputs, got %d and %d", total(hr), total(hb))
	}
	// BKA packs more outputs into the slowest band than RCA (many
	// equal-length paths — the staircase BER origin).
	if hb[3] <= hr[3] {
		t.Fatalf("expected BKA to have more near-critical outputs: bka=%v rca=%v", hb, hr)
	}
	if anR.PathDelayHistogram(rca, 0) != nil {
		t.Fatal("zero-bin histogram should be nil")
	}
}

func TestCheckFinite(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl := chainNetlist(t)
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	if err := an.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	an.Arrival[0] = math.NaN()
	if err := an.CheckFinite(); err == nil {
		t.Fatal("NaN arrival accepted")
	}
}

func TestMismatchPerturbsTiming(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	mm := fdsoi.NewMismatchSampler(0.02, 3)
	nl, _ := synth.RCA(synth.AdderConfig{Width: 8, Mismatch: mm})
	ref, _ := synth.RCA(synth.AdderConfig{Width: 8})
	a := sta.Analyze(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.5})
	b := sta.Analyze(ref, lib, proc, fdsoi.OperatingPoint{Vdd: 0.5})
	if a.CriticalDelay == b.CriticalDelay {
		t.Fatal("mismatch had no timing effect at low Vdd")
	}
}
