// Package synth generates the gate-level arithmetic operators the paper
// characterizes — ripple-carry adders (RCA) and Brent-Kung parallel-prefix
// adders (BKA) of any width, plus an array multiplier as an extension — and
// produces the synthesis-style reports of Table II (area, power, critical
// path with STA pessimism margin).
//
// The generators play the role of the "structured gate-level HDL +
// synthesis with user-defined constraints" box of the paper's Fig. 4: they
// emit technology-mapped netlists over the internal/cell library.
package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// AdderConfig parameterizes the adder generators.
type AdderConfig struct {
	// Width is the operand width in bits (≥ 1).
	Width int
	// WithCin adds a carry-in primary input.
	WithCin bool
	// Mismatch, when non-nil, samples per-gate threshold offsets at
	// elaboration time (Monte-Carlo-style variability).
	Mismatch *fdsoi.MismatchSampler
}

func (c AdderConfig) validate() error {
	if c.Width < 1 {
		return fmt.Errorf("synth: width %d < 1", c.Width)
	}
	return nil
}

// Port names shared by all generated operators.
const (
	PortA    = "a"
	PortB    = "b"
	PortCin  = "cin"
	PortSum  = "s"
	PortCout = "cout"
	PortProd = "p"
)

// fullAdder adds one full-adder bit position: sum and carry from (x, y, c).
// The carry uses the MAJ3 cell (the classic CMOS mirror carry gate); the
// sum is two cascaded XOR2 cells.
func fullAdder(b *netlist.Builder, x, y, c netlist.NetID) (sum, carry netlist.NetID) {
	p := b.Gate(cell.XOR2, x, y)
	sum = b.Gate(cell.XOR2, p, c)
	carry = b.Gate(cell.MAJ3, x, y, c)
	return sum, carry
}

// halfAdder adds one half-adder bit position.
func halfAdder(b *netlist.Builder, x, y netlist.NetID) (sum, carry netlist.NetID) {
	sum = b.Gate(cell.XOR2, x, y)
	carry = b.Gate(cell.AND2, x, y)
	return sum, carry
}

// RCA builds a ripple-carry adder: s = a + b (+ cin), with carry out.
// Serial-prefix structure: n stages for n bits, so the critical path is the
// full carry chain — the paper's archetype of a gradually failing VOS
// operator.
func RCA(cfg AdderConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Width
	b := netlist.NewBuilder(fmt.Sprintf("rca%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	sum := make([]netlist.NetID, n)
	var carry netlist.NetID
	haveCarry := false
	if cfg.WithCin {
		cin := b.InputBus(PortCin, 1)
		carry = cin[0]
		haveCarry = true
	}
	for i := 0; i < n; i++ {
		if haveCarry {
			sum[i], carry = fullAdder(b, a[i], bb[i], carry)
		} else {
			sum[i], carry = halfAdder(b, a[i], bb[i])
			haveCarry = true
		}
	}
	b.OutputBus(PortSum, sum)
	b.OutputBus(PortCout, []netlist.NetID{carry})
	return b.Build()
}

// BKA builds a Brent-Kung parallel-prefix adder. Carry generation and
// propagation are segmented into a log-depth prefix tree (the black/gray
// cells of the paper's Fig. 3), so many paths share the same length — the
// origin of the staircase BER pattern the paper observes.
func BKA(cfg AdderConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Width
	b := netlist.NewBuilder(fmt.Sprintf("bka%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)

	// Bitwise generate/propagate.
	g := make([]netlist.NetID, n)
	p := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		g[i] = b.Gate(cell.AND2, a[i], bb[i])
		p[i] = b.Gate(cell.XOR2, a[i], bb[i])
	}
	var cinNet netlist.NetID
	if cfg.WithCin {
		// Fold cin into g0: g0' = g0 + p0·cin (gray cell).
		cin := b.InputBus(PortCin, 1)
		cinNet = cin[0]
		t := b.Gate(cell.AND2, p[0], cinNet)
		g[0] = b.Gate(cell.OR2, g[0], t)
	}

	// Prefix nodes: G[i], P[i] currently span some window ending at bit i.
	// spansZero[i] records whether the window reaches bit 0 (gray cells may
	// then drop the P computation).
	G := make([]netlist.NetID, n)
	P := make([]netlist.NetID, n)
	spansZero := make([]bool, n)
	for i := 0; i < n; i++ {
		G[i], P[i] = g[i], p[i]
		spansZero[i] = i == 0
	}
	// combine merges node lo into node hi: (Ghi,Phi)·(Glo,Plo). The G-path
	// uses the compound AO21 cell (G = Ghi + Phi·Glo), matching how real
	// prefix adders are mapped; gray nodes (low span reaching bit 0) skip
	// the P computation.
	combine := func(hi, lo int) {
		G[hi] = b.Gate(cell.AO21, G[hi], P[hi], G[lo])
		if spansZero[lo] {
			spansZero[hi] = true
		} else {
			P[hi] = b.Gate(cell.AND2, P[hi], P[lo])
		}
	}
	// Up-sweep: build power-of-two spans.
	for d := 1; d < 2*n; d *= 2 {
		for i := 2*d - 1; i < n; i += 2 * d {
			combine(i, i-d)
		}
	}
	// Down-sweep: fill in the remaining prefixes.
	for d := 1 << 30; d >= 1; d /= 2 {
		for i := 3*d - 1; i < n; i += 2 * d {
			if !spansZero[i] {
				combine(i, i-d)
			}
		}
	}

	// Sums: s0 = p0 (or p0 ^ cin handled via g/cin fold — cin affects c1
	// onwards; s0 itself needs the explicit XOR when cin exists).
	sum := make([]netlist.NetID, n)
	if cfg.WithCin {
		sum[0] = b.Gate(cell.XOR2, p[0], cinNet)
	} else {
		// s0 is p0 buffered so the output net is gate-driven (keeps the
		// output load model uniform with the other sum bits).
		sum[0] = b.Gate(cell.BUF, p[0])
	}
	for i := 1; i < n; i++ {
		sum[i] = b.Gate(cell.XOR2, p[i], G[i-1]) // c_i = G[0..i-1]
	}
	b.OutputBus(PortSum, sum)
	b.OutputBus(PortCout, []netlist.NetID{G[n-1]})
	return b.Build()
}

// Arch identifies an adder architecture.
type Arch uint8

// Supported adder architectures. RCA and BKA are the paper's two
// configurations; KSA, Sklansky and CSel extend the study (DESIGN.md §6).
const (
	ArchRCA Arch = iota
	ArchBKA
	ArchKSA
	ArchSklansky
	ArchCSel
)

// CSelBlockSize is the ripple-block width used when ArchCSel is built via
// NewAdder.
const CSelBlockSize = 4

// String names the architecture the way the paper does.
func (a Arch) String() string {
	switch a {
	case ArchRCA:
		return "RCA"
	case ArchBKA:
		return "BKA"
	case ArchKSA:
		return "KSA"
	case ArchSklansky:
		return "SKL"
	case ArchCSel:
		return "CSEL"
	default:
		return fmt.Sprintf("Arch(%d)", uint8(a))
	}
}

// Arches lists all supported architectures.
func Arches() []Arch {
	return []Arch{ArchRCA, ArchBKA, ArchKSA, ArchSklansky, ArchCSel}
}

// NewAdder dispatches on the architecture.
func NewAdder(arch Arch, cfg AdderConfig) (*netlist.Netlist, error) {
	switch arch {
	case ArchRCA:
		return RCA(cfg)
	case ArchBKA:
		return BKA(cfg)
	case ArchKSA:
		return KSA(cfg)
	case ArchSklansky:
		return Sklansky(cfg)
	case ArchCSel:
		return CSelA(cfg, CSelBlockSize)
	default:
		return nil, fmt.Errorf("synth: unknown architecture %v", arch)
	}
}
