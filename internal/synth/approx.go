package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Static (design-time) approximate adders — the baselines the paper's
// Section II reviews and argues against: they trade accuracy for energy by
// construction, whereas VOS keeps an exact netlist and moves the operating
// triad. Building them lets the ablation benches quantify the comparison
// on equal footing (same cell library, same simulator, same metrics).
//
//   - LOA   (lower-part OR adder): the k LSBs are approximated by a
//     bitwise OR, the upper bits by an exact RCA — the classic
//     accurate/approximate split of the paper's Fig. 1 and ref [7].
//   - TRA   (truncated adder): the k LSBs are passed through from operand
//     a (their addition is dropped entirely).
//
// Both keep the standard adder ports, so every tool in this repository
// (synthesis report, STA, timing simulation, characterization, model
// training) runs on them unchanged.

// ApproxConfig parameterizes the static approximate adders.
type ApproxConfig struct {
	// Width is the total operand width.
	Width int
	// ApproxBits is the number of least-significant approximated bits
	// (0 ≤ ApproxBits ≤ Width).
	ApproxBits int
}

func (c ApproxConfig) validate() error {
	if c.Width < 1 {
		return fmt.Errorf("synth: width %d < 1", c.Width)
	}
	if c.ApproxBits < 0 || c.ApproxBits > c.Width {
		return fmt.Errorf("synth: approx bits %d outside [0, %d]", c.ApproxBits, c.Width)
	}
	return nil
}

// LOA builds a lower-part OR adder: s[i] = a[i] | b[i] for the low k bits,
// with the upper (n−k)-bit exact RCA seeded by the carry proxy
// a[k−1] & b[k−1] (the standard LOA carry-in heuristic).
func LOA(cfg ApproxConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n, k := cfg.Width, cfg.ApproxBits
	b := netlist.NewBuilder(fmt.Sprintf("loa%d_%d", n, k))
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	sum := make([]netlist.NetID, n)
	for i := 0; i < k; i++ {
		sum[i] = b.Gate(cell.OR2, a[i], bb[i])
	}
	var carry netlist.NetID
	haveCarry := false
	if k > 0 {
		carry = b.Gate(cell.AND2, a[k-1], bb[k-1])
		haveCarry = true
	}
	for i := k; i < n; i++ {
		if haveCarry {
			sum[i], carry = fullAdder(b, a[i], bb[i], carry)
		} else {
			sum[i], carry = halfAdder(b, a[i], bb[i])
			haveCarry = true
		}
	}
	if !haveCarry {
		// Fully approximated adder (k == n == 0 impossible; k == n): no
		// carry chain at all; cout is constantly the AND of the MSBs'
		// proxy — reuse the last OR's inputs.
		carry = b.Gate(cell.AND2, a[n-1], bb[n-1])
	}
	b.OutputBus(PortSum, sum)
	b.OutputBus(PortCout, []netlist.NetID{carry})
	return b.Build()
}

// TRA builds a truncated adder: the low k sum bits are a[i] passed through
// a buffer (their addition is dropped), the upper bits are an exact RCA
// with no carry from the truncated part.
func TRA(cfg ApproxConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n, k := cfg.Width, cfg.ApproxBits
	b := netlist.NewBuilder(fmt.Sprintf("tra%d_%d", n, k))
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	sum := make([]netlist.NetID, n)
	for i := 0; i < k; i++ {
		sum[i] = b.Gate(cell.BUF, a[i])
	}
	var carry netlist.NetID
	haveCarry := false
	for i := k; i < n; i++ {
		if haveCarry {
			sum[i], carry = fullAdder(b, a[i], bb[i], carry)
		} else {
			sum[i], carry = halfAdder(b, a[i], bb[i])
			haveCarry = true
		}
	}
	if !haveCarry {
		inv := b.Gate(cell.INV, a[0])
		carry = b.Gate(cell.AND2, a[0], inv) // constant 0: fully truncated
	}
	b.OutputBus(PortSum, sum)
	b.OutputBus(PortCout, []netlist.NetID{carry})
	return b.Build()
}

// LOAModel and TRAModel are zero-cost behavioural equivalents (for use as
// core.HardwareAdder baselines without simulation).

// LOAModel computes the lower-part OR adder functionally.
func LOAModel(a, b uint64, width, approxBits int) uint64 {
	mask := uint64(1)<<uint(width) - 1
	a, b = a&mask, b&mask
	low := uint64(0)
	for i := 0; i < approxBits; i++ {
		low |= ((a | b) >> uint(i) & 1) << uint(i)
	}
	var cin uint64
	if approxBits > 0 {
		cin = (a >> uint(approxBits-1)) & (b >> uint(approxBits-1)) & 1
	}
	hi := (a >> uint(approxBits)) + (b >> uint(approxBits)) + cin
	return low | hi<<uint(approxBits)
}

// TRAModel computes the truncated adder functionally.
func TRAModel(a, b uint64, width, approxBits int) uint64 {
	mask := uint64(1)<<uint(width) - 1
	a, b = a&mask, b&mask
	lowMask := uint64(1)<<uint(approxBits) - 1
	hi := (a >> uint(approxBits)) + (b >> uint(approxBits))
	return (a & lowMask) | hi<<uint(approxBits)
}
