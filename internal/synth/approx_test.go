package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// approxOut evaluates an approximate-adder netlist behaviourally.
func approxOut(t *testing.T, nl *netlist.Netlist, a, b uint64) (uint64, uint64) {
	t.Helper()
	return addOut(t, nl, a, b, 0)
}

func TestLOANetlistMatchesModel(t *testing.T) {
	for _, k := range []int{0, 1, 3, 4, 8} {
		nl, err := LOA(ApproxConfig{Width: 8, ApproxBits: k})
		if err != nil {
			t.Fatal(err)
		}
		f := func(x, y uint8) bool {
			a, b := uint64(x), uint64(y)
			s, _ := approxOut(t, nl, a, b)
			want := LOAModel(a, b, 8, k) & 0xff
			return s == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestTRANetlistMatchesModel(t *testing.T) {
	for _, k := range []int{0, 1, 3, 4, 8} {
		nl, err := TRA(ApproxConfig{Width: 8, ApproxBits: k})
		if err != nil {
			t.Fatal(err)
		}
		f := func(x, y uint8) bool {
			a, b := uint64(x), uint64(y)
			s, _ := approxOut(t, nl, a, b)
			want := TRAModel(a, b, 8, k) & 0xff
			return s == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestLOAZeroApproxIsExact(t *testing.T) {
	nl, err := LOA(ApproxConfig{Width: 8, ApproxBits: 0})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint8) bool {
		a, b := uint64(x), uint64(y)
		s, co := approxOut(t, nl, a, b)
		return s|co<<8 == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLOAErrorGrowsWithApproxBits(t *testing.T) {
	// Mean squared error must grow monotonically with k.
	prev := -1.0
	for _, k := range []int{0, 2, 4, 6} {
		var sum float64
		for a := uint64(0); a < 256; a += 5 {
			for b := uint64(0); b < 256; b += 5 {
				d := float64(LOAModel(a, b, 8, k)) - float64(a+b)
				sum += d * d
			}
		}
		if sum < prev {
			t.Fatalf("LOA MSE not monotone at k=%d", k)
		}
		prev = sum
	}
}

func TestApproxAddersAreFasterAndSmaller(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	exact, _ := RCA(AdderConfig{Width: 8})
	loa, err := LOA(ApproxConfig{Width: 8, ApproxBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	tra, err := TRA(ApproxConfig{Width: 8, ApproxBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	cpExact := sta.Analyze(exact, lib, proc, proc.Nominal()).CriticalDelay
	cpLOA := sta.Analyze(loa, lib, proc, proc.Nominal()).CriticalDelay
	cpTRA := sta.Analyze(tra, lib, proc, proc.Nominal()).CriticalDelay
	if !(cpLOA < cpExact && cpTRA < cpExact) {
		t.Fatalf("approx adders not faster: exact=%.3f loa=%.3f tra=%.3f", cpExact, cpLOA, cpTRA)
	}
	if !(loa.Area(lib) < exact.Area(lib) && tra.Area(lib) < exact.Area(lib)) {
		t.Fatal("approx adders not smaller")
	}
}

func TestApproxConfigValidation(t *testing.T) {
	if _, err := LOA(ApproxConfig{Width: 0, ApproxBits: 0}); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := LOA(ApproxConfig{Width: 8, ApproxBits: 9}); err == nil {
		t.Fatal("approx bits > width accepted")
	}
	if _, err := TRA(ApproxConfig{Width: 8, ApproxBits: -1}); err == nil {
		t.Fatal("negative approx bits accepted")
	}
}

func TestModelsMaskInputs(t *testing.T) {
	// Out-of-range operand bits must not leak into the result.
	if got := LOAModel(0xF00, 0x00F, 8, 2); got != LOAModel(0x00, 0x0F, 8, 2) {
		t.Fatalf("LOAModel does not mask: %#x", got)
	}
	if got := TRAModel(0x1FF, 0, 8, 0); got != TRAModel(0xFF, 0, 8, 0) {
		t.Fatalf("TRAModel does not mask: %#x", got)
	}
}
