package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// MultiplierConfig parameterizes the array-multiplier generator.
type MultiplierConfig struct {
	Width    int
	Mismatch *fdsoi.MismatchSampler
}

// ArrayMultiplier builds an unsigned n×n → 2n-bit schoolbook array
// multiplier: AND-gate partial products reduced by a ladder of ripple rows.
// This extends the paper's operator set beyond adders ("basic arithmetic
// operators"); its long, data-dependent carry structure makes it an
// interesting VOS subject in the ablation benches.
func ArrayMultiplier(cfg MultiplierConfig) (*netlist.Netlist, error) {
	n := cfg.Width
	if n < 1 {
		return nil, fmt.Errorf("synth: multiplier width %d < 1", n)
	}
	b := netlist.NewBuilder(fmt.Sprintf("mul%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)

	// Partial products pp[i][j] = a[j] & b[i], weight 2^(i+j).
	pp := make([][]netlist.NetID, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]netlist.NetID, n)
		for j := 0; j < n; j++ {
			pp[i][j] = b.Gate(cell.AND2, a[j], bb[i])
		}
	}

	// acc[q] is the running sum bit of weight 2^q; row i ripples its
	// partial products into positions i..i+n-1 and leaves its carry at
	// position i+n. Positions below i are final once row i runs.
	acc := make([]netlist.NetID, 2*n)
	valid := make([]bool, 2*n)
	for j := 0; j < n; j++ {
		acc[j], valid[j] = pp[0][j], true
	}
	for i := 1; i < n; i++ {
		var carry netlist.NetID
		haveCarry := false
		for j := 0; j < n; j++ {
			q := i + j
			x := pp[i][j]
			switch {
			case valid[q] && haveCarry:
				acc[q], carry = fullAdder(b, x, acc[q], carry)
			case valid[q]:
				acc[q], carry = halfAdder(b, x, acc[q])
				haveCarry = true
			case haveCarry:
				acc[q], carry = halfAdder(b, x, carry)
				valid[q] = true
			default:
				acc[q], valid[q] = x, true
			}
		}
		if haveCarry {
			acc[i+n], valid[i+n] = carry, true
		}
	}
	// Any still-invalid positions (only the top bit of a 1×1 multiplier)
	// are constant zero; synthesize x·x̄ to avoid constant nets.
	for q := 0; q < 2*n; q++ {
		if !valid[q] {
			inv := b.Gate(cell.INV, acc[0])
			acc[q] = b.Gate(cell.AND2, acc[0], inv)
			valid[q] = true
		}
	}
	b.OutputBus(PortProd, acc)
	return b.Build()
}
