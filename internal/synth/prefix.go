package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// This file adds further parallel-prefix and composite adder
// architectures beyond the paper's RCA/BKA pair. The paper's framework
// claims to be "compliant with different arithmetic configurations"; these
// generators back that claim and feed the architecture ablation benches:
//
//   - Kogge-Stone: minimal depth, maximal wiring — many equal-length paths,
//     so its VOS failure onset is even steeper than Brent-Kung's.
//   - Sklansky: minimal depth with high-fanout nodes — fanout-loaded delays
//     make its mid prefix levels the first casualties.
//   - Carry-select: duplicated blocks with late multiplexing — a serial/
//     parallel hybrid between RCA and the prefix trees.

// prefixState carries the running (G, P) nodes of a prefix network build.
type prefixState struct {
	b         *netlist.Builder
	G, P      []netlist.NetID
	spansZero []bool
}

func newPrefixState(b *netlist.Builder, a, bb []netlist.NetID) *prefixState {
	n := len(a)
	st := &prefixState{
		b:         b,
		G:         make([]netlist.NetID, n),
		P:         make([]netlist.NetID, n),
		spansZero: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		st.G[i] = b.Gate(cell.AND2, a[i], bb[i])
		st.P[i] = b.Gate(cell.XOR2, a[i], bb[i])
		st.spansZero[i] = i == 0
	}
	return st
}

// combineInto writes the merge of node lo into node hi at destination dst
// (dst == hi for in-place networks; Kogge-Stone needs fresh columns, which
// callers manage by copying state between levels).
func (st *prefixState) combine(hi, lo int) {
	st.G[hi] = st.b.Gate(cell.AO21, st.G[hi], st.P[hi], st.G[lo])
	if st.spansZero[lo] {
		st.spansZero[hi] = true
	} else {
		st.P[hi] = st.b.Gate(cell.AND2, st.P[hi], st.P[lo])
	}
}

// finishSums emits the sum and carry-out ports from a completed prefix
// network (G[i] spans [0..i] for every i).
func (st *prefixState) finishSums(p []netlist.NetID, cin netlist.NetID, hasCin bool) {
	n := len(st.G)
	sum := make([]netlist.NetID, n)
	if hasCin {
		sum[0] = st.b.Gate(cell.XOR2, p[0], cin)
	} else {
		sum[0] = st.b.Gate(cell.BUF, p[0])
	}
	for i := 1; i < n; i++ {
		sum[i] = st.b.Gate(cell.XOR2, p[i], st.G[i-1])
	}
	st.b.OutputBus(PortSum, sum)
	st.b.OutputBus(PortCout, []netlist.NetID{st.G[n-1]})
}

// KSA builds a Kogge-Stone adder: log2(n) levels, every column combined at
// every level (radix-2, minimal depth, O(n log n) cells).
func KSA(cfg AdderConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Width
	b := netlist.NewBuilder(fmt.Sprintf("ksa%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	st := newPrefixState(b, a, bb)
	p := append([]netlist.NetID(nil), st.P...)
	var cin netlist.NetID
	if cfg.WithCin {
		c := b.InputBus(PortCin, 1)
		cin = c[0]
		t := b.Gate(cell.AND2, st.P[0], cin)
		st.G[0] = b.Gate(cell.OR2, st.G[0], t)
	}
	for d := 1; d < n; d *= 2 {
		// Kogge-Stone combines columns top-down within a level using the
		// *previous* level's values; snapshot before mutating.
		prevG := append([]netlist.NetID(nil), st.G...)
		prevP := append([]netlist.NetID(nil), st.P...)
		prevZ := append([]bool(nil), st.spansZero...)
		for i := n - 1; i >= d; i-- {
			lo := i - d
			st.G[i] = b.Gate(cell.AO21, prevG[i], prevP[i], prevG[lo])
			if prevZ[lo] {
				st.spansZero[i] = true
			} else {
				st.P[i] = b.Gate(cell.AND2, prevP[i], prevP[lo])
			}
		}
	}
	st.finishSums(p, cin, cfg.WithCin)
	return b.Build()
}

// Sklansky builds a divide-and-conquer (Sklansky) adder: log2(n) levels
// with fanout doubling at each level.
func Sklansky(cfg AdderConfig) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Width
	b := netlist.NewBuilder(fmt.Sprintf("skl%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	st := newPrefixState(b, a, bb)
	p := append([]netlist.NetID(nil), st.P...)
	var cin netlist.NetID
	if cfg.WithCin {
		c := b.InputBus(PortCin, 1)
		cin = c[0]
		t := b.Gate(cell.AND2, st.P[0], cin)
		st.G[0] = b.Gate(cell.OR2, st.G[0], t)
	}
	for d := 1; d < n; d *= 2 {
		for blk := d; blk < n; blk += 2 * d {
			pivot := blk - 1 // completed prefix node feeding the block
			for i := blk; i < blk+d && i < n; i++ {
				st.combine(i, pivot)
			}
		}
	}
	st.finishSums(p, cin, cfg.WithCin)
	return b.Build()
}

// CSelA builds a carry-select adder from fixed-size RCA blocks: each block
// beyond the first is duplicated for carry-in 0 and 1, with 2:1 muxes
// (AO21 + INV based) picking the late-arriving true case.
func CSelA(cfg AdderConfig, blockSize int) (*netlist.Netlist, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("synth: carry-select block size %d", blockSize)
	}
	if cfg.WithCin {
		return nil, fmt.Errorf("synth: carry-select generator does not support cin")
	}
	n := cfg.Width
	b := netlist.NewBuilder(fmt.Sprintf("csel%d", n))
	if cfg.Mismatch != nil {
		b.SetMismatch(cfg.Mismatch)
	}
	a := b.InputBus(PortA, n)
	bb := b.InputBus(PortB, n)
	sum := make([]netlist.NetID, n)

	// mux2 returns s ? x1 : x0 as AO21(AND(x1,s), INV(s)... ) built from
	// basic cells: out = (x1 & s) | (x0 & !s).
	mux2 := func(x0, x1, s netlist.NetID) netlist.NetID {
		ns := b.Gate(cell.INV, s)
		t0 := b.Gate(cell.AND2, x0, ns)
		return b.Gate(cell.AO21, t0, x1, s)
	}

	// rcaBlock ripples width bits from constant carry-in cin01 (0 or 1
	// encoded structurally): for cin=0 the first position is a half adder;
	// for cin=1 it is a half adder plus increment (x ^ y ^ 1 = XNOR,
	// carry = x | y).
	rcaBlock := func(lo, width int, cinOne bool) (s []netlist.NetID, cout netlist.NetID) {
		s = make([]netlist.NetID, width)
		var carry netlist.NetID
		for j := 0; j < width; j++ {
			x, y := a[lo+j], bb[lo+j]
			switch {
			case j == 0 && !cinOne:
				s[j], carry = halfAdder(b, x, y)
			case j == 0 && cinOne:
				s[j] = b.Gate(cell.XNOR2, x, y)
				carry = b.Gate(cell.OR2, x, y)
			default:
				s[j], carry = fullAdder(b, x, y, carry)
			}
		}
		return s, carry
	}

	// Block 0 computes directly.
	first := blockSize
	if first > n {
		first = n
	}
	s0, carry := rcaBlock(0, first, false)
	copy(sum, s0)
	for lo := first; lo < n; lo += blockSize {
		w := blockSize
		if lo+w > n {
			w = n - lo
		}
		sA, cA := rcaBlock(lo, w, false) // assuming cin = 0
		sB, cB := rcaBlock(lo, w, true)  // assuming cin = 1
		for j := 0; j < w; j++ {
			sum[lo+j] = mux2(sA[j], sB[j], carry)
		}
		carry = mux2(cA, cB, carry)
	}
	b.OutputBus(PortSum, sum)
	b.OutputBus(PortCout, []netlist.NetID{carry})
	return b.Build()
}
