package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func TestKSAExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		exhaustiveAdderCheckArch(t, ArchKSA, w, false)
	}
	exhaustiveAdderCheckArch(t, ArchKSA, 5, true)
}

func TestSklanskyExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		exhaustiveAdderCheckArch(t, ArchSklansky, w, false)
	}
	exhaustiveAdderCheckArch(t, ArchSklansky, 5, true)
}

func TestCSelExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		exhaustiveAdderCheckArch(t, ArchCSel, w, false)
	}
}

// exhaustiveAdderCheckArch mirrors exhaustiveAdderCheck for the extended
// architectures (kept separate so the original paper-pair test stays
// focused).
func exhaustiveAdderCheckArch(t *testing.T, arch Arch, width int, withCin bool) {
	t.Helper()
	nl, err := NewAdder(arch, AdderConfig{Width: width, WithCin: withCin})
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(width) - 1
	cins := []uint64{0}
	if withCin {
		cins = []uint64{0, 1}
	}
	for a := uint64(0); a <= mask; a++ {
		for b := uint64(0); b <= mask; b++ {
			for _, cin := range cins {
				s, co := addOut(t, nl, a, b, cin)
				want := a + b + cin
				if s != want&mask || co != want>>uint(width) {
					t.Fatalf("%s%d(%d,%d,cin=%d) = (s=%d, co=%d), want %d",
						arch, width, a, b, cin, s, co, want)
				}
			}
		}
	}
}

func TestAllArchesAgreeRandom(t *testing.T) {
	const w = 16
	adders := Arches()
	built := make(map[Arch]*netlist.Netlist)
	for _, a := range adders {
		nl, err := NewAdder(a, AdderConfig{Width: w})
		if err != nil {
			t.Fatal(err)
		}
		built[a] = nl
	}
	f := func(x, y uint16) bool {
		a, b := uint64(x), uint64(y)
		ref, refCo := addOut(t, built[ArchRCA], a, b, 0)
		for _, arch := range adders[1:] {
			s, co := addOut(t, built[arch], a, b, 0)
			if s != ref || co != refCo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixDepthOrdering(t *testing.T) {
	// Logic depth: KSA ≈ Sklansky ≈ BKA ≪ CSel < RCA at 16 bits.
	depth := map[Arch]int{}
	for _, a := range Arches() {
		nl, err := NewAdder(a, AdderConfig{Width: 16})
		if err != nil {
			t.Fatal(err)
		}
		depth[a] = nl.MaxLevel()
	}
	if !(depth[ArchKSA] < depth[ArchRCA] && depth[ArchSklansky] < depth[ArchRCA] &&
		depth[ArchBKA] < depth[ArchRCA]) {
		t.Fatalf("prefix adders not shallower than RCA: %v", depth)
	}
	if !(depth[ArchCSel] < depth[ArchRCA]) {
		t.Fatalf("carry-select not shallower than RCA: %v", depth)
	}
}

func TestPrefixTimingOrdering(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	cp := map[Arch]float64{}
	for _, a := range Arches() {
		nl, err := NewAdder(a, AdderConfig{Width: 16})
		if err != nil {
			t.Fatal(err)
		}
		cp[a] = sta.Analyze(nl, lib, proc, proc.Nominal()).CriticalDelay
	}
	if !(cp[ArchKSA] < cp[ArchRCA]) {
		t.Fatalf("KSA not faster than RCA: %v", cp)
	}
	if !(cp[ArchSklansky] < cp[ArchRCA]) {
		t.Fatalf("Sklansky not faster than RCA: %v", cp)
	}
	if !(cp[ArchCSel] < cp[ArchRCA]) {
		t.Fatalf("CSel not faster than RCA: %v", cp)
	}
}

func TestKSALargestArea(t *testing.T) {
	// Kogge-Stone pays for its speed in cells: largest area of the
	// prefix family at 16 bits.
	lib := cell.Default28nmLVT()
	area := map[Arch]float64{}
	for _, a := range []Arch{ArchBKA, ArchKSA, ArchSklansky} {
		nl, err := NewAdder(a, AdderConfig{Width: 16})
		if err != nil {
			t.Fatal(err)
		}
		area[a] = nl.Area(lib)
	}
	if !(area[ArchKSA] > area[ArchBKA] && area[ArchKSA] > area[ArchSklansky]) {
		t.Fatalf("KSA area not largest: %v", area)
	}
}

func TestCSelValidation(t *testing.T) {
	if _, err := CSelA(AdderConfig{Width: 8}, 0); err == nil {
		t.Fatal("block size 0 accepted")
	}
	if _, err := CSelA(AdderConfig{Width: 8, WithCin: true}, 4); err == nil {
		t.Fatal("cin accepted")
	}
	if _, err := CSelA(AdderConfig{Width: 0}, 4); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestArchesListsAll(t *testing.T) {
	if len(Arches()) != 5 {
		t.Fatalf("Arches() = %v", Arches())
	}
	names := map[string]bool{}
	for _, a := range Arches() {
		names[a.String()] = true
	}
	for _, want := range []string{"RCA", "BKA", "KSA", "SKL", "CSEL"} {
		if !names[want] {
			t.Fatalf("missing arch %s", want)
		}
	}
}
