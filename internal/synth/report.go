package synth

import (
	"math/rand/v2"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// STAMargin is the pessimism factor EDA flows add on top of the true
// longest path (clock-path pessimism, OCV derates). The paper calls this
// out explicitly: "EDA tools introduce additional timing margin in the
// datapaths during STA due to clock path pessimism. This additional timing
// prevents timing errors due to variability effects." It is exactly this
// margin that lets moderate voltage over-scaling run error-free (the 0%-BER
// half of Fig. 8).
const STAMargin = 1.28

// Report mirrors the columns of the paper's Table II plus the quantities
// the rest of the flow needs.
type Report struct {
	Name      string
	GateCount int
	// Area is the total cell area (µm²).
	Area float64
	// CriticalPath is the reported (margined) critical path (ns) at the
	// nominal operating point — the number a synthesis timing report would
	// print and the clock the paper derives its triads from.
	CriticalPath float64
	// TrueCriticalPath is the raw STA longest path (ns) without margin.
	TrueCriticalPath float64
	// TotalPower, DynamicPower, LeakagePower are µW at the nominal
	// operating point with the circuit clocked at CriticalPath.
	TotalPower   float64
	DynamicPower float64
	LeakagePower float64
	// EnergyPerOp is the average switching+leakage energy (fJ) per
	// operation at the nominal point and CriticalPath clock.
	EnergyPerOp float64
}

// Synthesize produces the synthesis report for a netlist: area from the
// library, critical path from STA with the pessimism margin, and power from
// zero-delay switching activity over random vectors (the standard
// synthesis-time power estimate).
func Synthesize(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, activityVectors int, seed uint64) (*Report, error) {
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	if err := an.CheckFinite(); err != nil {
		return nil, err
	}
	r := &Report{
		Name:             nl.Name,
		GateCount:        nl.NumGates(),
		Area:             nl.Area(lib),
		TrueCriticalPath: an.CriticalDelay,
		CriticalPath:     an.CriticalDelay * STAMargin,
		LeakagePower:     nl.LeakagePower(lib),
	}
	// Zero-delay activity estimation: average energy of input-vector
	// transitions, each toggled gate output costing ½CV² + internal energy.
	toggles, err := averageToggleEnergy(nl, lib, activityVectors, seed)
	if err != nil {
		return nil, err
	}
	r.EnergyPerOp = toggles + r.LeakagePower*r.CriticalPath // fJ (µW·ns = fJ)
	r.DynamicPower = toggles / r.CriticalPath
	r.TotalPower = r.DynamicPower + r.LeakagePower
	return r, nil
}

// averageToggleEnergy estimates the mean switching energy (fJ) per input
// transition at the nominal supply using zero-delay evaluation. Vectors
// are evaluated netlist.BatchLanes at a time through the bit-sliced
// EvaluateBatch; the RNG draw sequence and the per-gate summation order
// match the scalar implementation exactly, so reports are bit-identical.
func averageToggleEnergy(nl *netlist.Netlist, lib *cell.Library, vectors int, seed uint64) (float64, error) {
	if vectors < 2 {
		vectors = 2
	}
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	// Per-gate toggle energy, hoisted out of the vector loop (NetLoad
	// walks fanouts and allocates).
	gateE := make([]float64, nl.NumGates())
	loads := nl.NetLoads(lib)
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		c := lib.MustCell(g.Kind)
		gateE[gi] = fdsoi.SwitchingEnergy(loads[g.Output], 1.0) + c.InternalEnergy
	}
	lanes := make([]uint64, nl.NumNets())
	prev := make([]uint8, nl.NumNets()) // last vector of the previous batch
	togs := make([]uint64, nl.NumGates())
	var total float64
	for done := 0; done < vectors; {
		n := vectors - done
		if n > netlist.BatchLanes {
			n = netlist.BatchLanes
		}
		for k := 0; k < n; k++ {
			bit := uint64(1) << uint(k)
			for _, p := range nl.Inputs {
				for _, b := range p.Bits {
					if rng.Uint64()&1 != 0 {
						lanes[b] |= bit
					} else {
						lanes[b] &^= bit
					}
				}
			}
		}
		if err := nl.EvaluateBatch(lanes); err != nil {
			return 0, err
		}
		// Per-gate toggle masks for the whole batch (bit k: vector k
		// differs from its predecessor), then a branchless fold in the
		// same (vector-major, gate-minor) order as a scalar loop:
		// adding gateE·0.0 for untoggled gates leaves the running sum
		// bit-identical to a conditional add, without the ~50%
		// mispredicted branch per (vector, gate).
		for gi := range nl.Gates {
			x := lanes[nl.Gates[gi].Output]
			togs[gi] = x ^ (x<<1 | uint64(prev[nl.Gates[gi].Output]))
		}
		for k := 0; k < n; k++ {
			if done+k == 0 {
				continue // the first vector has no predecessor
			}
			for gi, tg := range togs {
				total += gateE[gi] * float64(tg>>uint(k)&1)
			}
		}
		for i := range prev {
			prev[i] = uint8(lanes[i]>>uint(n-1)) & 1
		}
		done += n
	}
	return total / float64(vectors-1), nil
}
