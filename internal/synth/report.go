package synth

import (
	"math/rand/v2"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// STAMargin is the pessimism factor EDA flows add on top of the true
// longest path (clock-path pessimism, OCV derates). The paper calls this
// out explicitly: "EDA tools introduce additional timing margin in the
// datapaths during STA due to clock path pessimism. This additional timing
// prevents timing errors due to variability effects." It is exactly this
// margin that lets moderate voltage over-scaling run error-free (the 0%-BER
// half of Fig. 8).
const STAMargin = 1.28

// Report mirrors the columns of the paper's Table II plus the quantities
// the rest of the flow needs.
type Report struct {
	Name      string
	GateCount int
	// Area is the total cell area (µm²).
	Area float64
	// CriticalPath is the reported (margined) critical path (ns) at the
	// nominal operating point — the number a synthesis timing report would
	// print and the clock the paper derives its triads from.
	CriticalPath float64
	// TrueCriticalPath is the raw STA longest path (ns) without margin.
	TrueCriticalPath float64
	// TotalPower, DynamicPower, LeakagePower are µW at the nominal
	// operating point with the circuit clocked at CriticalPath.
	TotalPower   float64
	DynamicPower float64
	LeakagePower float64
	// EnergyPerOp is the average switching+leakage energy (fJ) per
	// operation at the nominal point and CriticalPath clock.
	EnergyPerOp float64
}

// Synthesize produces the synthesis report for a netlist: area from the
// library, critical path from STA with the pessimism margin, and power from
// zero-delay switching activity over random vectors (the standard
// synthesis-time power estimate).
func Synthesize(nl *netlist.Netlist, lib *cell.Library, proc fdsoi.Params, activityVectors int, seed uint64) (*Report, error) {
	an := sta.Analyze(nl, lib, proc, proc.Nominal())
	if err := an.CheckFinite(); err != nil {
		return nil, err
	}
	r := &Report{
		Name:             nl.Name,
		GateCount:        nl.NumGates(),
		Area:             nl.Area(lib),
		TrueCriticalPath: an.CriticalDelay,
		CriticalPath:     an.CriticalDelay * STAMargin,
		LeakagePower:     nl.LeakagePower(lib),
	}
	// Zero-delay activity estimation: average energy of input-vector
	// transitions, each toggled gate output costing ½CV² + internal energy.
	toggles, err := averageToggleEnergy(nl, lib, activityVectors, seed)
	if err != nil {
		return nil, err
	}
	r.EnergyPerOp = toggles + r.LeakagePower*r.CriticalPath // fJ (µW·ns = fJ)
	r.DynamicPower = toggles / r.CriticalPath
	r.TotalPower = r.DynamicPower + r.LeakagePower
	return r, nil
}

// averageToggleEnergy estimates the mean switching energy (fJ) per input
// transition at the nominal supply using zero-delay evaluation.
func averageToggleEnergy(nl *netlist.Netlist, lib *cell.Library, vectors int, seed uint64) (float64, error) {
	if vectors < 2 {
		vectors = 2
	}
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	in := make(map[netlist.NetID]uint8)
	randomize := func() {
		for _, p := range nl.Inputs {
			for _, b := range p.Bits {
				in[b] = uint8(rng.Uint64() & 1)
			}
		}
	}
	randomize()
	prev, err := nl.Evaluate(in)
	if err != nil {
		return 0, err
	}
	var total float64
	for v := 1; v < vectors; v++ {
		randomize()
		cur, err := nl.Evaluate(in)
		if err != nil {
			return 0, err
		}
		for gi := range nl.Gates {
			g := &nl.Gates[gi]
			if cur[g.Output] != prev[g.Output] {
				c := lib.MustCell(g.Kind)
				load := nl.NetLoad(lib, g.Output)
				total += fdsoi.SwitchingEnergy(load, 1.0) + c.InternalEnergy
			}
		}
		prev = cur
	}
	return total / float64(vectors-1), nil
}
