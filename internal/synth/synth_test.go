package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
)

// addOut evaluates an adder netlist behaviorally and returns the (sum,
// cout) words.
func addOut(t *testing.T, nl *netlist.Netlist, a, b, cin uint64) (uint64, uint64) {
	t.Helper()
	pa, _ := nl.InputPort(PortA)
	pb, _ := nl.InputPort(PortB)
	in := map[netlist.NetID]uint8{}
	netlist.AssignPort(in, pa, a)
	netlist.AssignPort(in, pb, b)
	if pc, ok := nl.InputPort(PortCin); ok {
		netlist.AssignPort(in, pc, cin)
	}
	vals, err := nl.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := nl.OutputPort(PortSum)
	pco, _ := nl.OutputPort(PortCout)
	return netlist.PortValue(ps, vals), netlist.PortValue(pco, vals)
}

func exhaustiveAdderCheck(t *testing.T, arch Arch, width int, withCin bool) {
	t.Helper()
	nl, err := NewAdder(arch, AdderConfig{Width: width, WithCin: withCin})
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(width) - 1
	cins := []uint64{0}
	if withCin {
		cins = []uint64{0, 1}
	}
	for a := uint64(0); a <= mask; a++ {
		for b := uint64(0); b <= mask; b++ {
			for _, cin := range cins {
				s, co := addOut(t, nl, a, b, cin)
				want := a + b + cin
				if s != want&mask || co != want>>uint(width) {
					t.Fatalf("%s%d(%d,%d,cin=%d) = (s=%d, co=%d), want %d",
						arch, width, a, b, cin, s, co, want)
				}
			}
		}
	}
}

func TestRCAExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5} {
		exhaustiveAdderCheck(t, ArchRCA, w, false)
	}
	exhaustiveAdderCheck(t, ArchRCA, 4, true)
}

func TestBKAExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		exhaustiveAdderCheck(t, ArchBKA, w, false)
	}
	exhaustiveAdderCheck(t, ArchBKA, 4, true)
	exhaustiveAdderCheck(t, ArchBKA, 5, true)
}

func TestAddersRandomWide(t *testing.T) {
	for _, arch := range []Arch{ArchRCA, ArchBKA} {
		for _, w := range []int{8, 16, 24, 32} {
			nl, err := NewAdder(arch, AdderConfig{Width: w})
			if err != nil {
				t.Fatal(err)
			}
			mask := uint64(1)<<uint(w) - 1
			f := func(a, b uint64) bool {
				a, b = a&mask, b&mask
				s, co := addOut(t, nl, a, b, 0)
				want := a + b
				return s == want&mask && co == want>>uint(w)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Errorf("%s%d: %v", arch, w, err)
			}
		}
	}
}

func TestRCABKAEquivalence(t *testing.T) {
	rca, _ := RCA(AdderConfig{Width: 12})
	bka, _ := BKA(AdderConfig{Width: 12})
	f := func(a, b uint64) bool {
		a &= 0xfff
		b &= 0xfff
		s1, c1 := addOut(t, rca, a, b, 0)
		s2, c2 := addOut(t, bka, a, b, 0)
		return s1 == s2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdderRejectsBadWidth(t *testing.T) {
	if _, err := RCA(AdderConfig{Width: 0}); err == nil {
		t.Fatal("RCA accepted width 0")
	}
	if _, err := BKA(AdderConfig{Width: -3}); err == nil {
		t.Fatal("BKA accepted negative width")
	}
	if _, err := NewAdder(Arch(99), AdderConfig{Width: 8}); err == nil {
		t.Fatal("NewAdder accepted unknown arch")
	}
}

func TestArchString(t *testing.T) {
	if ArchRCA.String() != "RCA" || ArchBKA.String() != "BKA" {
		t.Fatal("arch names wrong")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch must still format")
	}
}

func TestBKAShallowerThanRCA(t *testing.T) {
	rca, _ := RCA(AdderConfig{Width: 16})
	bka, _ := BKA(AdderConfig{Width: 16})
	if bka.MaxLevel() >= rca.MaxLevel() {
		t.Fatalf("BKA depth %d not shallower than RCA depth %d", bka.MaxLevel(), rca.MaxLevel())
	}
}

func TestBKALargerThanRCA(t *testing.T) {
	lib := cell.Default28nmLVT()
	rca, _ := RCA(AdderConfig{Width: 8})
	bka, _ := BKA(AdderConfig{Width: 8})
	if bka.Area(lib) <= rca.Area(lib) {
		t.Fatalf("BKA area %.1f not larger than RCA %.1f (paper Table II order)",
			bka.Area(lib), rca.Area(lib))
	}
}

func mulOut(t *testing.T, nl *netlist.Netlist, a, b uint64) uint64 {
	t.Helper()
	pa, _ := nl.InputPort(PortA)
	pb, _ := nl.InputPort(PortB)
	in := map[netlist.NetID]uint8{}
	netlist.AssignPort(in, pa, a)
	netlist.AssignPort(in, pb, b)
	vals, err := nl.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := nl.OutputPort(PortProd)
	return netlist.PortValue(pp, vals)
}

func TestArrayMultiplierExhaustiveSmall(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4} {
		nl, err := ArrayMultiplier(MultiplierConfig{Width: w})
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(w) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				if got := mulOut(t, nl, a, b); got != a*b {
					t.Fatalf("mul%d(%d,%d) = %d, want %d", w, a, b, got, a*b)
				}
			}
		}
	}
}

func TestArrayMultiplierRandom8(t *testing.T) {
	nl, err := ArrayMultiplier(MultiplierConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		return mulOut(t, nl, uint64(a), uint64(b)) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayMultiplierRejectsBadWidth(t *testing.T) {
	if _, err := ArrayMultiplier(MultiplierConfig{Width: 0}); err == nil {
		t.Fatal("accepted width 0")
	}
}

func TestSynthesizeReportShape(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	rca8, _ := RCA(AdderConfig{Width: 8})
	rep, err := Synthesize(rca8, lib, proc, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Area <= 0 || rep.CriticalPath <= 0 || rep.TotalPower <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.CriticalPath <= rep.TrueCriticalPath {
		t.Fatal("margined critical path must exceed true path")
	}
	if rep.TotalPower < rep.DynamicPower || rep.TotalPower < rep.LeakagePower {
		t.Fatal("total power must dominate components")
	}
}

// TestTableIIShape verifies the paper's Table II orderings: BKA is bigger
// and faster than RCA at equal width; 16-bit is bigger and slower than
// 8-bit at equal architecture.
func TestTableIIShape(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	reports := map[string]*Report{}
	for _, tc := range []struct {
		name  string
		arch  Arch
		width int
	}{
		{"rca8", ArchRCA, 8}, {"bka8", ArchBKA, 8},
		{"rca16", ArchRCA, 16}, {"bka16", ArchBKA, 16},
	} {
		nl, err := NewAdder(tc.arch, AdderConfig{Width: tc.width})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Synthesize(nl, lib, proc, 500, 1)
		if err != nil {
			t.Fatal(err)
		}
		reports[tc.name] = rep
	}
	if !(reports["bka8"].CriticalPath < reports["rca8"].CriticalPath) {
		t.Error("BKA8 should be faster than RCA8")
	}
	if !(reports["bka16"].CriticalPath < reports["rca16"].CriticalPath) {
		t.Error("BKA16 should be faster than RCA16")
	}
	if !(reports["rca16"].CriticalPath > reports["rca8"].CriticalPath) {
		t.Error("RCA16 should be slower than RCA8")
	}
	if !(reports["rca16"].Area > reports["rca8"].Area) {
		t.Error("RCA16 should be bigger than RCA8")
	}
	// Paper Table II ballpark: RCA8 ≈ 114.7 µm², CP ≈ 0.28 ns. Allow wide
	// bands — we match shape, not silicon.
	r8 := reports["rca8"]
	if r8.Area < 80 || r8.Area > 160 {
		t.Errorf("RCA8 area %.1f µm² far from paper's 114.7", r8.Area)
	}
	if r8.CriticalPath < 0.2 || r8.CriticalPath > 0.36 {
		t.Errorf("RCA8 critical path %.3f ns far from paper's 0.28", r8.CriticalPath)
	}
	r16 := reports["rca16"]
	if r16.CriticalPath < 0.4 || r16.CriticalPath > 0.65 {
		t.Errorf("RCA16 critical path %.3f ns far from paper's 0.53", r16.CriticalPath)
	}
}

func TestMismatchedAddersStillCorrect(t *testing.T) {
	// Threshold mismatch changes timing, never logic.
	mm := fdsoi.NewMismatchSampler(0.01, 5)
	nl, err := RCA(AdderConfig{Width: 8, Mismatch: mm})
	if err != nil {
		t.Fatal(err)
	}
	s, co := addOut(t, nl, 200, 100, 0)
	if s != (300 & 0xff) {
		t.Fatalf("sum = %d", s)
	}
	if co != 300>>8 {
		t.Fatalf("cout = %d", co)
	}
}
