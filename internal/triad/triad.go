// Package triad defines operating triads — the (Tclk, Vdd, Vbb)
// combinations of the paper's Table III — and constructs the per-adder
// 43-triad sweep sets used throughout the evaluation (Fig. 8, Table IV).
package triad

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fdsoi"
)

// Triad is one operating point of the characterization sweep.
type Triad struct {
	// Tclk is the capture clock period (ns).
	Tclk float64 `json:"tclk"`
	// Vdd is the supply voltage (V).
	Vdd float64 `json:"vdd"`
	// Vbb is the forward-body-bias magnitude (V). The paper biases both
	// wells symmetrically (n-well +Vbb, p-well −Vbb), hence its "±2"
	// labels; 0 means no bias.
	Vbb float64 `json:"vbb"`
}

// Label formats the triad the way the paper's Fig. 8 x-axes do:
// "Tclk,Vdd,Vbb" with "±2" for the symmetric body bias.
func (t Triad) Label() string {
	vbb := "0"
	if t.Vbb != 0 {
		vbb = fmt.Sprintf("±%g", t.Vbb)
	}
	return fmt.Sprintf("%s,%s,%s", trimFloat(t.Tclk), trimFloat(t.Vdd), vbb)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	if len(s) > 3 && s[0] == '0' { // keep the paper's "0.28" style
		return s
	}
	return s
}

// OperatingPoint returns the electrical half of the triad.
func (t Triad) OperatingPoint() fdsoi.OperatingPoint {
	return fdsoi.OperatingPoint{Vdd: t.Vdd, Vbb: t.Vbb}
}

// Validate rejects non-physical triads. The negated comparisons also
// catch NaN, which would otherwise slip through every capture-boundary
// comparison downstream.
func (t Triad) Validate() error {
	switch {
	case !(t.Tclk > 0):
		return fmt.Errorf("triad: non-positive Tclk %v", t.Tclk)
	case !(t.Vdd > 0):
		return fmt.Errorf("triad: non-positive Vdd %v", t.Vdd)
	case !(t.Vbb >= 0):
		return fmt.Errorf("triad: negative Vbb magnitude %v", t.Vbb)
	}
	return nil
}

// ClockRatios holds the four clock periods of a Table III row expressed as
// multiples of the synthesized critical path: one relaxed clock, the
// synthesis clock itself, and two overclocked settings.
type ClockRatios [4]float64

// PaperClockRatios returns the Tclk/CriticalPath ratios implied by the
// paper's Table III for each benchmark (e.g. the 8-bit RCA row 0.5, 0.28,
// 0.19, 0.13 ns over its 0.28 ns critical path). Applying these to our own
// synthesized critical paths keeps the sweep faithful to the methodology
// ("clock period ... chosen based on the synthesis timing report") while
// staying consistent with this reproduction's timing.
func PaperClockRatios(arch string, width int) ClockRatios {
	switch {
	case arch == "RCA" && width == 8:
		return ClockRatios{1.79, 1.00, 0.68, 0.46}
	case arch == "BKA" && width == 8:
		return ClockRatios{2.63, 1.00, 0.68, 0.34}
	case arch == "RCA" && width == 16:
		return ClockRatios{1.32, 1.00, 0.47, 0.38}
	case arch == "BKA" && width == 16:
		return ClockRatios{2.80, 1.00, 0.80, 0.60}
	default:
		// Generic spread for widths the paper did not evaluate.
		return ClockRatios{1.80, 1.00, 0.70, 0.45}
	}
}

// Clocks scales the ratios by the synthesized critical path and rounds to
// the paper's two-significant-digit style.
func (r ClockRatios) Clocks(criticalPath float64) [4]float64 {
	var c [4]float64
	for i, f := range r {
		c[i] = round3(criticalPath * f)
	}
	return c
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// SweepConfig controls triad-set construction.
type SweepConfig struct {
	// Clocks are the four clock periods (ns), relaxed first.
	Clocks [4]float64
	// VddMax, VddMin, VddStep define the supply sweep (paper: 1.0 → 0.4 in
	// 0.1 steps).
	VddMax, VddMin, VddStep float64
	// VbbValues are the body-bias magnitudes (paper: 0 and ±2).
	VbbValues []float64
}

// DefaultSweep returns the paper's sweep parameters for the given clocks.
func DefaultSweep(clocks [4]float64) SweepConfig {
	return SweepConfig{
		Clocks:    clocks,
		VddMax:    1.0,
		VddMin:    0.4,
		VddStep:   0.1,
		VbbValues: []float64{0, 2},
	}
}

// Set builds the sweep set: the nominal triad (relaxed clock, VddMax, no
// bias) plus the full Vdd × Vbb grid at each of the three aggressive
// clocks. With the paper's parameters this yields exactly 43 triads per
// adder, matching Fig. 8.
func Set(cfg SweepConfig) []Triad {
	triads := []Triad{{Tclk: cfg.Clocks[0], Vdd: cfg.VddMax, Vbb: 0}}
	for _, tclk := range cfg.Clocks[1:] {
		for vdd := cfg.VddMax; vdd >= cfg.VddMin-1e-9; vdd -= cfg.VddStep {
			for _, vbb := range cfg.VbbValues {
				triads = append(triads, Triad{
					Tclk: tclk,
					Vdd:  math.Round(vdd*100) / 100,
					Vbb:  vbb,
				})
			}
		}
	}
	return triads
}

// Nominal returns the reference triad of a set (the first entry by
// construction): relaxed clock, full supply, no bias. Energy efficiency is
// measured against it ("amount of energy saving compared to ideal test
// case").
func Nominal(set []Triad) Triad { return set[0] }

// GroupByOperatingPoint partitions a sweep set's indices by electrical
// operating point: triads that differ only in Tclk land in one group.
// Groups appear in first-occurrence order and preserve the set's triad
// order within each group, so per-triad results assembled group by group
// are positionally identical to a flat per-triad sweep. The paper's
// 43-triad Table III set collapses to 14 groups (a 7×2 Vdd×Vbb grid,
// with the nominal triad sharing the full-supply unbiased point) — the
// basis of the characterization flow's one-simulation-per-electrical-
// point sweep.
func GroupByOperatingPoint(set []Triad) [][]int {
	groups := make([][]int, 0, len(set))
	index := make(map[fdsoi.OperatingPoint]int, len(set))
	for i, tr := range set {
		op := tr.OperatingPoint()
		g, ok := index[op]
		if !ok {
			g = len(groups)
			index[op] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// SuperGroups partitions a sweep set's indices into cross-voltage
// super-groups: triads sharing a body-bias family (equal Vbb) land in
// one group regardless of Vdd and Tclk. Within a family only per-gate
// delays rescale with Vdd, so the event order of a recorded wave is
// frequently preserved across the family's operating points and one
// trace can serve them all via order-stable retiming (the engine
// falls back to fresh simulation per electrical point whenever the
// order check fails, so the grouping is purely a planning hint).
// Families appear in first-occurrence order and preserve the set's
// triad order within each group, so per-triad results assembled group
// by group are positionally identical to a flat per-triad sweep. The
// paper's 43-triad Table III set collapses to 2 super-groups (Vbb 0
// and ±2) covering its 14 electrical points.
func SuperGroups(set []Triad) [][]int {
	groups := make([][]int, 0, 2)
	index := make(map[float64]int, 2)
	for i, tr := range set {
		g, ok := index[tr.Vbb]
		if !ok {
			g = len(groups)
			index[tr.Vbb] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// SortByBERThenEnergy orders triad indices the way the paper's Fig. 8
// x-axes are laid out: ascending bit-error rate, ties broken by ascending
// energy per operation.
func SortByBERThenEnergy(n int, ber func(int) float64, energy func(int) float64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ba, bb := ber(idx[a]), ber(idx[b])
		if ba != bb {
			return ba < bb
		}
		return energy(idx[a]) < energy(idx[b])
	})
	return idx
}
