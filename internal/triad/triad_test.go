package triad

import (
	"math"
	"testing"
)

func TestLabelFormat(t *testing.T) {
	cases := []struct {
		tr   Triad
		want string
	}{
		{Triad{Tclk: 0.28, Vdd: 0.5, Vbb: 2}, "0.28,0.5,±2"},
		{Triad{Tclk: 0.5, Vdd: 1.0, Vbb: 0}, "0.5,1,0"},
		{Triad{Tclk: 0.064, Vdd: 0.4, Vbb: 2}, "0.064,0.4,±2"},
	}
	for _, tc := range cases {
		if got := tc.tr.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.tr, got, tc.want)
		}
	}
}

func TestOperatingPoint(t *testing.T) {
	tr := Triad{Tclk: 0.28, Vdd: 0.7, Vbb: 2}
	op := tr.OperatingPoint()
	if op.Vdd != 0.7 || op.Vbb != 2 {
		t.Fatalf("op = %+v", op)
	}
}

func TestValidate(t *testing.T) {
	if err := (Triad{Tclk: 0.5, Vdd: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Triad{
		{Tclk: 0, Vdd: 1},
		{Tclk: 0.5, Vdd: 0},
		{Tclk: 0.5, Vdd: 1, Vbb: -1},
		{Tclk: math.NaN(), Vdd: 1},
		{Tclk: 0.5, Vdd: math.NaN()},
		{Tclk: 0.5, Vdd: 1, Vbb: math.NaN()},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSetHas43Triads(t *testing.T) {
	// The paper's sweep: 1 nominal + 3 clocks × 7 Vdd × 2 Vbb = 43.
	clocks := PaperClockRatios("RCA", 8).Clocks(0.28)
	set := Set(DefaultSweep(clocks))
	if len(set) != 43 {
		t.Fatalf("triad set size = %d, want 43", len(set))
	}
	// All triads valid and distinct.
	seen := map[string]bool{}
	for _, tr := range set {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		l := tr.Label()
		if seen[l] {
			t.Fatalf("duplicate triad %s", l)
		}
		seen[l] = true
	}
	// Nominal first: relaxed clock, 1.0 V, no bias.
	nom := Nominal(set)
	if nom.Vdd != 1.0 || nom.Vbb != 0 || nom.Tclk != clocks[0] {
		t.Fatalf("nominal = %+v", nom)
	}
}

func TestPaperClockRatiosKnownRows(t *testing.T) {
	// 8-bit RCA at CP=0.28 must reproduce the paper's Table III row
	// (0.5, 0.28, 0.19, 0.13) to rounding.
	c := PaperClockRatios("RCA", 8).Clocks(0.28)
	want := [4]float64{0.501, 0.28, 0.19, 0.129}
	for i := range c {
		if diff := c[i] - want[i]; diff > 0.001 || diff < -0.001 {
			t.Errorf("clock[%d] = %v, want ≈%v", i, c[i], want[i])
		}
	}
	// Unknown configurations fall back to the generic spread.
	g := PaperClockRatios("RCA", 32)
	if g != (ClockRatios{1.80, 1.00, 0.70, 0.45}) {
		t.Errorf("generic ratios = %v", g)
	}
}

func TestClocksRounded(t *testing.T) {
	c := ClockRatios{1.333333, 1, 0.5, 0.25}.Clocks(0.3)
	for _, v := range c {
		r := v * 1000
		if r != float64(int64(r+0.5)) && r != float64(int64(r)) {
			t.Fatalf("clock %v not rounded to 3 decimals", v)
		}
	}
}

func TestSortByBERThenEnergy(t *testing.T) {
	ber := []float64{0, 0.5, 0, 0.2}
	energy := []float64{5, 1, 3, 2}
	idx := SortByBERThenEnergy(4, func(i int) float64 { return ber[i] },
		func(i int) float64 { return energy[i] })
	want := []int{2, 0, 3, 1} // BER 0 (E 3), BER 0 (E 5), BER .2, BER .5
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("order = %v, want %v", idx, want)
		}
	}
}

func TestGroupByOperatingPoint(t *testing.T) {
	set := Set(DefaultSweep([4]float64{0.5, 0.28, 0.19, 0.13}))
	if len(set) != 43 {
		t.Fatalf("sweep set = %d triads, want 43", len(set))
	}
	groups := GroupByOperatingPoint(set)
	if len(groups) != 14 {
		t.Fatalf("got %d groups, want 14 (7 Vdd x 2 Vbb)", len(groups))
	}
	// Every triad appears exactly once, groups share one operating point,
	// and in-group order follows the set order.
	seen := make([]bool, len(set))
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		op := set[g[0]].OperatingPoint()
		for j, i := range g {
			if seen[i] {
				t.Fatalf("triad %d grouped twice", i)
			}
			seen[i] = true
			if set[i].OperatingPoint() != op {
				t.Fatalf("group mixes operating points: %v vs %v", set[i].OperatingPoint(), op)
			}
			if j > 0 && g[j] <= g[j-1] {
				t.Fatalf("group indices out of set order: %v", g)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("triad %d missing from groups", i)
		}
	}
	// The nominal triad shares the full-supply unbiased point with the
	// three aggressive clocks: its group has four members.
	if got := len(groups[0]); got != 4 {
		t.Fatalf("nominal group has %d triads, want 4", got)
	}
}
