// Package vcd writes IEEE-1364 Value Change Dump waveforms from the
// timing simulator, so VOS failures can be inspected in any standard
// waveform viewer (GTKWave etc.): late carry arrivals, glitch trains and
// capture-edge races become directly visible.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// Writer streams one VCD file. Create with NewWriter, feed monotonically
// non-decreasing timestamps through Change, and Close to flush.
type Writer struct {
	bw        *bufio.Writer
	ids       map[netlist.NetID]string
	lastTime  int64 // in timescale units
	headerOut bool
	timePS    float64 // picoseconds per unit
	err       error
}

// NewWriter emits the VCD header for all nets of nl. The timescale is
// 1 ps, which resolves every delay the FDSOI model produces.
func NewWriter(w io.Writer, nl *netlist.Netlist) *Writer {
	vw := &Writer{
		bw:       bufio.NewWriter(w),
		ids:      make(map[netlist.NetID]string, nl.NumNets()),
		lastTime: -1,
		timePS:   1,
	}
	for id := range nl.Nets {
		vw.ids[netlist.NetID(id)] = idCode(id)
	}
	vw.writeHeader(nl)
	return vw
}

// idCode maps an index to a VCD identifier (printable ASCII 33..126,
// little-endian multi-character).
func idCode(i int) string {
	const lo, n = 33, 94
	var sb strings.Builder
	for {
		sb.WriteByte(byte(lo + i%n))
		i /= n
		if i == 0 {
			return sb.String()
		}
		i--
	}
}

func (w *Writer) writeHeader(nl *netlist.Netlist) {
	fmt.Fprintf(w.bw, "$date repro $end\n$version repro-vos simulator $end\n")
	fmt.Fprintf(w.bw, "$timescale 1ps $end\n")
	fmt.Fprintf(w.bw, "$scope module %s $end\n", sanitizeName(nl.Name))
	// Emit ports first (stable, sorted), then internal nets.
	emitted := make(map[netlist.NetID]bool)
	for _, p := range append(append([]netlist.Port{}, nl.Inputs...), nl.Outputs...) {
		for i, b := range p.Bits {
			if emitted[b] {
				continue
			}
			emitted[b] = true
			fmt.Fprintf(w.bw, "$var wire 1 %s %s[%d] $end\n", w.ids[b], sanitizeName(p.Name), i)
		}
	}
	rest := make([]int, 0, nl.NumNets())
	for id := range nl.Nets {
		if !emitted[netlist.NetID(id)] {
			rest = append(rest, id)
		}
	}
	sort.Ints(rest)
	for _, id := range rest {
		fmt.Fprintf(w.bw, "$var wire 1 %s %s $end\n",
			w.ids[netlist.NetID(id)], sanitizeName(nl.Nets[id].Name))
	}
	fmt.Fprintf(w.bw, "$upscope $end\n$enddefinitions $end\n")
}

func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '[', r == ']', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// DumpInitial records the initial value of every net ($dumpvars block).
// Call once, before any Change.
func (w *Writer) DumpInitial(values []uint8) {
	if w.err != nil {
		return
	}
	fmt.Fprintf(w.bw, "$dumpvars\n")
	for id := 0; id < len(values); id++ {
		fmt.Fprintf(w.bw, "%d%s\n", values[id]&1, w.ids[netlist.NetID(id)])
	}
	fmt.Fprintf(w.bw, "$end\n")
	w.lastTime = -1
}

// Change records a net transition at tNs nanoseconds (converted to ps).
// Timestamps must not decrease.
func (w *Writer) Change(tNs float64, net netlist.NetID, v uint8) {
	if w.err != nil {
		return
	}
	t := int64(tNs*1000/w.timePS + 0.5)
	if t < w.lastTime {
		w.err = fmt.Errorf("vcd: time went backwards: %d after %d", t, w.lastTime)
		return
	}
	if t != w.lastTime {
		fmt.Fprintf(w.bw, "#%d\n", t)
		w.lastTime = t
	}
	fmt.Fprintf(w.bw, "%d%s\n", v&1, w.ids[net])
}

// Marker emits a comment-like dummy timestamp advance, useful to delimit
// operations (e.g. the capture edge) in the waveform.
func (w *Writer) Marker(tNs float64) {
	if w.err != nil {
		return
	}
	t := int64(tNs*1000/w.timePS + 0.5)
	if t > w.lastTime {
		fmt.Fprintf(w.bw, "#%d\n", t)
		w.lastTime = t
	}
}

// Close flushes buffered output and reports any deferred error.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
