package vcd_test

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/fdsoi"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/vcd"
)

// parseVCD is a minimal VCD reader for the tests: returns id→name from the
// header and the ordered list of (time, id, value) changes.
type change struct {
	t  int64
	id string
	v  uint8
}

func parseVCD(t *testing.T, data string) (map[string]string, []change) {
	t.Helper()
	names := map[string]string{}
	var changes []change
	var now int64
	inHeader := true
	sc := bufio.NewScanner(strings.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "$var"):
			// $var wire 1 <id> <name> $end
			f := strings.Fields(line)
			if len(f) < 6 {
				t.Fatalf("bad var line %q", line)
			}
			if _, dup := names[f[3]]; dup {
				t.Fatalf("duplicate id %q", f[3])
			}
			names[f[3]] = f[4]
		case strings.HasPrefix(line, "$enddefinitions"):
			inHeader = false
		case strings.HasPrefix(line, "$"):
			// other directives ignored
		case line[0] == '#':
			tv, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				t.Fatalf("bad time %q", line)
			}
			if tv < now {
				t.Fatalf("time went backwards: %d after %d", tv, now)
			}
			now = tv
		case line[0] == '0' || line[0] == '1':
			if inHeader {
				t.Fatalf("change before definitions end: %q", line)
			}
			changes = append(changes, change{t: now, id: line[1:], v: line[0] - '0'})
		default:
			t.Fatalf("unparsed line %q", line)
		}
	}
	return names, changes
}

func TestVCDFromSimulation(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl, err := synth.RCA(synth.AdderConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(nl, lib, proc, proc.Nominal())
	binder := sim.NewBinder(nl)
	if err := eng.Reset(binder.Inputs()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := vcd.NewWriter(&buf, nl)
	w.DumpInitial(make([]uint8, nl.NumNets()))
	eng.SetTracer(w.Change)

	binder.MustSet(synth.PortA, 0xF)
	binder.MustSet(synth.PortB, 0x1)
	res, err := eng.Step(binder.Inputs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w.Marker(0.5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_ = res

	names, changes := parseVCD(t, buf.String())
	if len(names) != nl.NumNets() {
		t.Fatalf("header declares %d nets, want %d", len(names), nl.NumNets())
	}
	if len(changes) == 0 {
		t.Fatal("no changes recorded")
	}
	// The carry chain of 0xF + 0x1 must produce changes at strictly
	// positive times (gate delays), and input changes at t=0.
	sawZero, sawLate := false, false
	for _, c := range changes {
		if c.t == 0 {
			sawZero = true
		}
		if c.t > 0 {
			sawLate = true
		}
	}
	if !sawZero || !sawLate {
		t.Fatalf("expected both t=0 input edges and delayed gate edges (zero=%v late=%v)",
			sawZero, sawLate)
	}
	// Final state reconstruction: replaying changes over the initial dump
	// must yield the settled sum 0x0 with cout 1 (0xF + 0x1 = 0x10).
	state := map[string]uint8{}
	for id := range names {
		state[id] = 0
	}
	for _, c := range changes {
		state[c.id] = c.v
	}
	// Build name → id reverse map to look up ports.
	byName := map[string]string{}
	for id, name := range names {
		byName[name] = id
	}
	sumPort, _ := nl.OutputPort(synth.PortSum)
	for i := range sumPort.Bits {
		id := byName["s["+strconv.Itoa(i)+"]"]
		if id == "" {
			t.Fatalf("sum bit %d missing from header", i)
		}
		if state[id] != 0 {
			t.Fatalf("replayed s[%d] = %d, want 0", i, state[id])
		}
	}
	coutID := byName["cout[0]"]
	if state[coutID] != 1 {
		t.Fatal("replayed cout != 1")
	}
}

func TestVCDGlitchesVisibleUnderVOS(t *testing.T) {
	lib := cell.Default28nmLVT()
	proc := fdsoi.Default()
	nl, err := synth.RCA(synth.AdderConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(nl, lib, proc, fdsoi.OperatingPoint{Vdd: 0.6})
	binder := sim.NewBinder(nl)
	if err := eng.Reset(binder.Inputs()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf, nl)
	w.DumpInitial(make([]uint8, nl.NumNets()))
	eng.SetTracer(w.Change)
	binder.MustSet(synth.PortA, 0xFF)
	binder.MustSet(synth.PortB, 0x01)
	if _, err := eng.Step(binder.Inputs(), 0.269); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, changes := parseVCD(t, buf.String())
	// A full carry ripple at low voltage: expect a long chain of
	// post-capture (>269ps) events — the timing violation made visible.
	late := 0
	for _, c := range changes {
		if c.t > 269 {
			late++
		}
	}
	if late < 4 {
		t.Fatalf("expected several post-capture transitions, saw %d", late)
	}
}

func TestIDCodesUnique(t *testing.T) {
	// Large netlist: identifiers must stay unique past the 94-char
	// single-character space.
	b := netlist.NewBuilder("wide")
	in := b.InputBus("x", 2)
	var outs []netlist.NetID
	prev := in[0]
	for i := 0; i < 200; i++ {
		prev = b.Gate(cell.INV, prev)
		outs = append(outs, prev)
	}
	b.OutputBus("o", outs[len(outs)-1:])
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf, nl)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := parseVCD(t, buf.String())
	if len(names) != nl.NumNets() {
		t.Fatalf("ids not unique: %d declared for %d nets", len(names), nl.NumNets())
	}
}

func TestTimeMonotonicityEnforced(t *testing.T) {
	b := netlist.NewBuilder("tiny")
	a := b.InputBus("a", 1)
	o := b.Gate(cell.INV, a[0])
	b.OutputBus("o", []netlist.NetID{o})
	nl := b.MustBuild()
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf, nl)
	w.Change(1.0, a[0], 1)
	w.Change(0.5, a[0], 0) // backwards
	if err := w.Close(); err == nil {
		t.Fatal("backwards time accepted")
	}
}
