package vos

import (
	"context"
	"errors"
	"fmt"
)

// Client runs characterization sweeps. Local executes them in-process;
// Remote forwards them to a vosd daemon over HTTP. The two are
// interchangeable: the same Spec yields the same Result values either
// way, so programs can be pointed at a shared daemon with a one-line
// change.
type Client interface {
	// Run is the synchronous path: submit the spec, wait for completion
	// and return the full results. Most programs only need Run.
	Run(ctx context.Context, spec *Spec) (*Result, error)

	// Submit starts a sweep asynchronously and returns its id.
	Submit(ctx context.Context, spec *Spec) (string, error)
	// Status returns a sweep's lifecycle snapshot without results.
	Status(ctx context.Context, id string) (*Result, error)
	// Wait blocks until the sweep reaches a terminal status and returns
	// the terminal snapshot (without results; fetch them with Results).
	Wait(ctx context.Context, id string) (*Result, error)
	// Results returns a finished sweep's full results. While the sweep is
	// still running it fails with ErrNotDone; for failed or canceled
	// sweeps it fails with a *SweepError.
	Results(ctx context.Context, id string) (*Result, error)
	// Events streams the sweep's incremental progress: point events as
	// each operating point completes, then exactly one terminal event,
	// after which the channel closes. The engine replays the sweep's
	// event history to new subscribers, so the stream is complete from
	// the sweep's start no matter when it is opened (and reopening it
	// recovers anything a slow consumer missed). Canceling the context
	// detaches the stream.
	Events(ctx context.Context, id string) (<-chan Event, error)
	// Cancel stops a pending or running sweep.
	Cancel(ctx context.Context, id string) error

	// RunMC is the synchronous Monte Carlo path: submit the spec, wait
	// for completion and return the full per-point results. The
	// asynchronous methods below mirror the sweep lifecycle for Monte
	// Carlo jobs (see MCSpec/MCResult/MCEvent).
	RunMC(ctx context.Context, spec *MCSpec) (*MCResult, error)
	SubmitMC(ctx context.Context, spec *MCSpec) (string, error)
	MCStatus(ctx context.Context, id string) (*MCResult, error)
	WaitMC(ctx context.Context, id string) (*MCResult, error)
	MCResults(ctx context.Context, id string) (*MCResult, error)
	MCEvents(ctx context.Context, id string) (<-chan MCEvent, error)
	CancelMC(ctx context.Context, id string) error

	// CacheStats reports the executing engine's result-cache counters.
	CacheStats(ctx context.Context) (*CacheStats, error)

	// Close releases the client's resources: the in-process engine for
	// Local, idle connections for Remote.
	Close() error
}

// Event types carried by Event.Type. A stream is progress/point events
// followed by exactly one terminal event.
const (
	EventProgress = "progress"
	EventPoint    = "point"
	EventDone     = "done"
	EventFailed   = "failed"
	EventCanceled = "canceled"
)

// Event is one entry of a sweep's event stream.
type Event struct {
	Type    string `json:"type"`
	SweepID string `json:"sweepId"`
	Status  string `json:"status"`
	// Progress is the sweep's counter set as of this event.
	Progress Progress `json:"progress"`
	// Bench, Arch and Width identify the operator of a point event;
	// Point is the completed point's summary.
	Bench string `json:"bench,omitempty"`
	Arch  string `json:"arch,omitempty"`
	Width int    `json:"width,omitempty"`
	Point *Point `json:"point,omitempty"`
	// Error carries the failure reason of failed/canceled events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether this event ends its stream.
func (e Event) Terminal() bool {
	return e.Type == EventDone || e.Type == EventFailed || e.Type == EventCanceled
}

// CacheStats reports the engine's content-addressed result cache
// activity, plus the engine's lifetime simulation count.
type CacheStats struct {
	MemHits     uint64 `json:"memHits"`
	DiskHits    uint64 `json:"diskHits"`
	Misses      uint64 `json:"misses"`
	Stores      uint64 `json:"stores"`
	WriteErrors uint64 `json:"writeErrors"`
	// CorruptEntries counts on-disk entries found truncated or invalid,
	// deleted and served as misses.
	CorruptEntries uint64 `json:"corruptEntries,omitempty"`
	MemEntries     int    `json:"memEntries"`
	// Peer-tier counters, non-zero only on a clustered daemon: misses
	// filled from peer vosd nodes (PeerHits), fan-outs that found
	// nothing anywhere (PeerMisses), failed peer fetches (PeerErrors),
	// entries replicated to their ring owner (PeerPushes) and pushes
	// dropped on a full replication queue (PeerPushDrops).
	PeerHits      uint64 `json:"peerHits,omitempty"`
	PeerMisses    uint64 `json:"peerMisses,omitempty"`
	PeerErrors    uint64 `json:"peerErrors,omitempty"`
	PeerPushes    uint64 `json:"peerPushes,omitempty"`
	PeerPushDrops uint64 `json:"peerPushDrops,omitempty"`
	// PeerPushQueueDepth/Cap expose the replication queue's current
	// depth and capacity — the backpressure signal behind PeerPushDrops.
	PeerPushQueueDepth int `json:"peerPushQueueDepth,omitempty"`
	PeerPushQueueCap   int `json:"peerPushQueueCap,omitempty"`
	// DiskDegraded reports a daemon whose disk cache tier has failed
	// enough consecutive writes to be demoted to read-only memory-backed
	// mode; DegradedWrites counts the Puts that skipped the disk while
	// degraded. A later successful re-probe clears DiskDegraded.
	DiskDegraded   bool   `json:"diskDegraded,omitempty"`
	DegradedWrites uint64 `json:"degradedWrites,omitempty"`
	// GroupedPoints counts the subset of Executions simulated as members
	// of a multi-point electrical group (several clock periods served by
	// one trace simulation of their shared operating point).
	GroupedPoints uint64 `json:"groupedPoints"`
	// Hits is MemHits + DiskHits; Executions counts point jobs that
	// actually reached the simulator.
	Hits       uint64 `json:"hits"`
	Executions uint64 `json:"executions"`
}

// Sentinel errors shared by both client implementations. Remote wraps
// them with transport detail; test with errors.Is.
var (
	// ErrNotFound reports an unknown sweep id.
	ErrNotFound = errors.New("vos: unknown sweep")
	// ErrNotDone reports a Results call on a sweep that is still
	// pending or running.
	ErrNotDone = errors.New("vos: sweep not finished")
	// ErrAlreadyDone reports a Cancel aimed at a job that already
	// reached a terminal state (done, failed or canceled).
	ErrAlreadyDone = errors.New("vos: job already finished")
)

// SweepError is the terminal error of a sweep that failed or was
// canceled: Results (and Run) return it instead of partial results.
type SweepError struct {
	ID      string
	Status  string // StatusFailed or StatusCanceled
	Message string
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("vos: sweep %s %s: %s", e.ID, e.Status, e.Message)
}

// APIError is a structured non-2xx response from a vosd daemon: the HTTP
// status plus the error envelope's code and message. It matches
// ErrNotFound and ErrNotDone under errors.Is according to its Code, so
// callers can treat Local and Remote failures uniformly.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("vos: server error %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// Is maps envelope codes onto the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Code == "not_found"
	case ErrNotDone:
		return e.Code == "sweep_running"
	case ErrAlreadyDone:
		return e.Code == "already_done"
	}
	return false
}

// Adder is a hardware-oracle adder pinned at one operating triad: every
// Add runs one two-vector timing experiment on the characterized
// netlist. It is satisfied by the simulator-backed oracle Local.Adder
// returns and mirrors the internal core.HardwareAdder seam, so it plugs
// directly into the model-training and application layers.
type Adder interface {
	Width() int
	Add(a, b uint64) uint64
}
