// Package vos is the public SDK of this reproduction: one Client API for
// characterizing voltage-over-scaled operators, whether the sweeps run on
// an in-process engine (Local) or against a remote vosd daemon (Remote).
//
// A characterization is described by a Spec — a fluent builder over the
// sweep configuration space (architectures × widths × triad policy ×
// backend × stimulus) — and produces a Result: per-operator synthesis
// reports and per-operating-point error/energy summaries, with
// projections for the paper's Fig. 5, Fig. 8 and Table IV.
//
//	cli, err := vos.NewLocal(vos.LocalOptions{})
//	if err != nil { ... }
//	defer cli.Close()
//
//	spec := vos.NewSpec().Arches("RCA").Widths(8).Patterns(2000).Seed(1)
//	res, err := cli.Run(ctx, spec)
//	if err != nil { ... }
//	for _, p := range res.Operators[0].Fig8() {
//		fmt.Println(p.Triad.Label(), p.BER, p.EnergyPerOpFJ)
//	}
//
// Swapping the execution site is one line — vos.NewRemote("http://host:8420",
// vos.RemoteOptions{}) returns a Client with identical behavior, down to
// byte-identical result values (both sites run the same deterministic
// engine and the same wire encoding). Long sweeps stream incremental
// per-point events through Client.Events on either transport.
//
// The REST surface behind Remote is documented in API.md; the exported
// surface of this package is pinned by api/vos.txt (make apicheck).
package vos
