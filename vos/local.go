package vos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/charz"
	"repro/internal/engine"
	"repro/internal/triad"
)

// LocalOptions configures an in-process client.
type LocalOptions struct {
	// Workers is the engine worker-pool size; ≤0 means NumCPU.
	Workers int
	// CacheDir persists characterization results on disk, making
	// repeated sweeps across process restarts near-free. Empty keeps the
	// result cache memory-only.
	CacheDir string
	// JournalDir enables the engine's write-ahead journal there: job
	// lifecycles survive process restarts, finished jobs stay listable
	// and unfinished ones are re-adopted and resumed on the next start.
	// NewLocal replays the journal before returning, so a Local client
	// never observes the recovering state a daemon exposes as 503.
	// Empty disables durability.
	JournalDir string
}

// Local is the in-process Client: it owns a sweep engine (worker pool +
// content-addressed result cache) and runs every sweep in this process.
type Local struct {
	eng *engine.Engine
}

var _ Client = (*Local)(nil)

// NewLocal starts an in-process client. Close it to stop the engine.
func NewLocal(opts LocalOptions) (*Local, error) {
	eng, err := engine.New(engine.Options{Workers: opts.Workers, CacheDir: opts.CacheDir, JournalDir: opts.JournalDir})
	if err != nil {
		return nil, err
	}
	if opts.JournalDir != "" {
		// In-process clients have no 503-and-retry protocol to ride out
		// replay; block until the registries are rebuilt instead.
		if err := eng.WaitReady(context.Background()); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return &Local{eng: eng}, nil
}

// Close stops the engine, draining in-flight sweeps.
func (l *Local) Close() error {
	l.eng.Close()
	return nil
}

// Run implements Client.
func (l *Local) Run(ctx context.Context, spec *Spec) (*Result, error) {
	id, err := l.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if _, err := l.Wait(ctx, id); err != nil {
		return nil, err
	}
	return l.Results(ctx, id)
}

// Submit implements Client.
func (l *Local) Submit(_ context.Context, spec *Spec) (string, error) {
	return l.eng.Submit(spec.request())
}

// Status implements Client.
func (l *Local) Status(_ context.Context, id string) (*Result, error) {
	sw, ok := l.eng.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	sw.Results = nil
	return toResult(sw)
}

// Wait implements Client.
func (l *Local) Wait(ctx context.Context, id string) (*Result, error) {
	sw, err := l.eng.Wait(ctx, id)
	if err != nil {
		if sw.ID == "" {
			return nil, fmt.Errorf("%w %q", ErrNotFound, id)
		}
		return nil, err
	}
	sw.Results = nil
	return toResult(sw)
}

// Results implements Client.
func (l *Local) Results(_ context.Context, id string) (*Result, error) {
	sw, ok := l.eng.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	switch sw.Status {
	case engine.StatusDone:
		return toResult(sw)
	case engine.StatusFailed, engine.StatusCanceled:
		return nil, &SweepError{ID: sw.ID, Status: string(sw.Status), Message: sw.Error}
	default:
		return nil, fmt.Errorf("%w: sweep %s is %s (%d/%d points)",
			ErrNotDone, sw.ID, sw.Status, sw.Progress.Completed, sw.Progress.TotalPoints)
	}
}

// Events implements Client.
func (l *Local) Events(ctx context.Context, id string) (<-chan Event, error) {
	ch, cancel, ok := l.eng.Subscribe(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	out := make(chan Event, 16)
	go func() {
		defer close(out)
		defer cancel()
		for {
			select {
			case ev, open := <-ch:
				if !open {
					return
				}
				e, err := toEvent(ev)
				if err != nil {
					return
				}
				select {
				case out <- e:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// Cancel implements Client.
func (l *Local) Cancel(_ context.Context, id string) error {
	switch err := l.eng.Cancel(id); {
	case err == nil:
		return nil
	case errors.Is(err, engine.ErrAlreadyDone):
		return fmt.Errorf("%w: sweep %q", ErrAlreadyDone, id)
	default:
		return fmt.Errorf("%w %q", ErrNotFound, id)
	}
}

// CacheStats implements Client.
func (l *Local) CacheStats(_ context.Context) (*CacheStats, error) {
	stats := l.eng.CacheStats()
	out := &CacheStats{}
	if err := reencode(stats, out); err != nil {
		return nil, err
	}
	out.Hits = stats.Hits()
	out.Executions = l.eng.Executions()
	return out, nil
}

// Adder builds a hardware-oracle adder for one operator of the spec at
// one operating triad: the timing simulator pinned at that point, exposed
// as a functional adder. It reuses the engine's memoized synthesis, so a
// characterized operator costs nothing extra to instrument. Local only —
// the oracle steps a netlist in-process, which no remote transport can
// do per-operation at a sane cost.
func (l *Local) Adder(ctx context.Context, spec *Spec, arch string, width int, tr Triad) (Adder, error) {
	req := spec.request()
	cfg, err := req.OperatorConfig(arch, width)
	if err != nil {
		return nil, err
	}
	prep, err := l.eng.Prepare(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return charz.NewEngineAdder(prep.Netlist, cfg, triad.Triad(tr))
}

// reencode converts between the engine's wire types and the SDK types
// through their shared JSON schema. One conversion path — the same bytes
// a daemon would serve — keeps Local and Remote results byte-identical.
func reencode(in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("vos: encode: %w", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("vos: decode: %w", err)
	}
	return nil
}

func toResult(sw engine.Sweep) (*Result, error) {
	var r Result
	if err := reencode(sw, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func toEvent(ev engine.SweepEvent) (Event, error) {
	var e Event
	err := reencode(ev, &e)
	return e, err
}
