package vos

// Monte Carlo jobs: the SDK surface of the daemon's /v1/mc service.
// An MCSpec describes application kernels to run at million-sample
// scale on the calibrated error-model backend; MCResult carries the
// per-(kernel, operating point) quality statistics back. Like sweeps,
// the same MCSpec yields byte-identical results through Local and
// Remote — and through a sharded cluster, whose rep-range partials
// merge deterministically.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/engine"
	"repro/internal/triad"
)

// MCSpec describes one Monte Carlo job: which application kernels to
// run, on which operator, at which operating points, and how many
// samples per point. Builder methods return the receiver:
//
//	vos.NewMCSpec("fir", "kmeans").Arch("RCA").Samples(1_000_000)
//
// The zero kernel list is invalid — a job needs at least one kernel.
type MCSpec struct {
	req engine.MCRequest
}

// NewMCSpec returns a spec running the named kernels ("fir", "blur",
// "sobel", "kmeans") with default settings: an RCA operator over its
// paper triad set, one million samples per point, seed 1.
func NewMCSpec(kernels ...string) *MCSpec {
	s := &MCSpec{}
	s.req.Kernels = append([]string(nil), kernels...)
	return s
}

// Arch selects the adder architecture ("RCA", "BKA", "KSA", "SKL",
// "CSEL"). Default: RCA. The operand width is fixed at the application
// word width.
func (s *MCSpec) Arch(name string) *MCSpec {
	s.req.Arch = name
	return s
}

// Seed drives every deterministic stream of the job; equal seeds give
// bit-identical results on any cluster shape. Default: 1.
func (s *MCSpec) Seed(seed uint64) *MCSpec {
	s.req.Seed = seed
	return s
}

// Samples sets the per-(kernel, point) sample budget, rounded up to
// whole kernel reps. Default: 1e6.
func (s *MCSpec) Samples(n int64) *MCSpec {
	s.req.Samples = n
	return s
}

// Patterns sets the stimulus budget of the underlying model sweep
// configuration (default 2000). It does not change Monte Carlo results;
// it exists so shard sub-jobs reproduce their coordinator's operator
// configuration exactly.
func (s *MCSpec) Patterns(n int) *MCSpec {
	s.req.Patterns = n
	return s
}

// RepRange restricts the job to the rep range [lo, hi) of every point —
// the shape a vosd cluster's shard sub-jobs take, which is why
// rep-range jobs always execute on the node that received them instead
// of being re-sharded. Results carry RepLo/RepHi markers and merge
// deterministically with the other ranges' partials.
func (s *MCSpec) RepRange(lo, hi int) *MCSpec {
	s.req.RepLo, s.req.RepHi = lo, hi
	return s
}

// PaperTriads selects the operator's Table III triad set (the default).
func (s *MCSpec) PaperTriads() *MCSpec {
	s.req.Policy = PolicyPaper
	s.req.Triads = nil
	return s
}

// Triads runs the job at exactly these operating points.
func (s *MCSpec) Triads(ts ...Triad) *MCSpec {
	s.req.Policy = PolicyExplicit
	s.req.Triads = make([]triad.Triad, len(ts))
	for i, t := range ts {
		s.req.Triads[i] = triad.Triad(t)
	}
	return s
}

// Lease makes the job coordinator-leased — see Spec.Lease; the same
// observation-or-cancel contract applied to Monte Carlo jobs.
func (s *MCSpec) Lease(d time.Duration) *MCSpec {
	s.req.LeaseSec = int((d + time.Second - 1) / time.Second)
	return s
}

// Validate checks the spec without running it.
func (s *MCSpec) Validate() error {
	r := s.req
	return (&r).Validate()
}

// request returns the engine-level request. The copy keeps the spec
// reusable after submission.
func (s *MCSpec) request() engine.MCRequest { return s.req }

// Fidelity is a trained error model's cross-validation report: how the
// model's error statistics compare against the gate-level oracle on a
// held-out pattern stream, and which trained table produced the result.
type Fidelity struct {
	// SNRdB is the modeled-vs-exact signal-to-noise ratio (capped at 99
	// for exact matches); DeltaBER the |model − hardware| bit-error-rate
	// gap the fidelity gate bounds.
	SNRdB       float64 `json:"snrDB"`
	DeltaBER    float64 `json:"deltaBER"`
	BERModel    float64 `json:"berModel"`
	BERHardware float64 `json:"berHardware"`
	// TrainPatterns/EvalPatterns are the calibration recipe's budgets.
	TrainPatterns int `json:"trainPatterns"`
	EvalPatterns  int `json:"evalPatterns"`
	// Fingerprint is the content hash of the trained table.
	Fingerprint string `json:"fingerprint"`
}

// MCPoint is one (kernel, operating point) cell of a Monte Carlo job.
type MCPoint struct {
	Kernel string `json:"kernel"`
	// Metric names the quality statistic of RepMetrics/Mean/Min/Max:
	// "snr" or "psnr" (dB, capped at 99 for exact outputs) or "rmse".
	Metric string `json:"metric"`
	Triad  Triad  `json:"triad"`
	// Samples is the number of input samples processed; Reps the number
	// of independent kernel repetitions they were drawn over.
	Samples int64 `json:"samples"`
	Reps    int   `json:"reps"`
	// Mean/Min/Max summarize RepMetrics, the per-rep quality series in
	// rep order.
	Mean       float64   `json:"mean"`
	Min        float64   `json:"min"`
	Max        float64   `json:"max"`
	RepMetrics []float64 `json:"repMetrics"`
	// ErrHist is the output-error magnitude histogram: bin 0 counts
	// exact outputs, bin i errors of bit-length i.
	ErrHist      []uint64 `json:"errHist"`
	Outputs      int64    `json:"outputs"`
	ErrorOutputs int64    `json:"errorOutputs"`
	ErrorRate    float64  `json:"errorRate"`
	// EnergyPerOpFJ is the operating point's oracle-measured per-add
	// energy; Fidelity the error model's cross-validation report.
	EnergyPerOpFJ float64   `json:"energyPerOpFJ"`
	Fidelity      *Fidelity `json:"fidelity,omitempty"`
}

// MCResult is a Monte Carlo job snapshot.
type MCResult struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	// Progress counts (kernel × operating point) cells.
	Progress Progress `json:"progress"`
	// Points is populated once Status is done, kernel-major in spec
	// order.
	Points []MCPoint `json:"points,omitempty"`
}

// Point returns the result's cell for a kernel and triad, or nil.
func (r *MCResult) Point(kernel string, tr Triad) *MCPoint {
	for i := range r.Points {
		if r.Points[i].Kernel == kernel && r.Points[i].Triad == tr {
			return &r.Points[i]
		}
	}
	return nil
}

// MCEvent is one entry of a Monte Carlo job's event stream.
type MCEvent struct {
	Type   string `json:"type"`
	JobID  string `json:"jobId"`
	Status string `json:"status"`
	// Progress is the job's counter set as of this event; Point the
	// completed cell of a point event.
	Progress Progress `json:"progress"`
	Point    *MCPoint `json:"point,omitempty"`
	// Error carries the failure reason of failed/canceled events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether this event ends its stream.
func (e MCEvent) Terminal() bool {
	return e.Type == EventDone || e.Type == EventFailed || e.Type == EventCanceled
}

// --- Local implementation ---

// RunMC implements Client.
func (l *Local) RunMC(ctx context.Context, spec *MCSpec) (*MCResult, error) {
	id, err := l.SubmitMC(ctx, spec)
	if err != nil {
		return nil, err
	}
	if _, err := l.WaitMC(ctx, id); err != nil {
		return nil, err
	}
	return l.MCResults(ctx, id)
}

// SubmitMC implements Client.
func (l *Local) SubmitMC(_ context.Context, spec *MCSpec) (string, error) {
	return l.eng.SubmitMC(spec.request())
}

// MCStatus implements Client.
func (l *Local) MCStatus(_ context.Context, id string) (*MCResult, error) {
	job, ok := l.eng.GetMC(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	job.Points = nil
	return toMCResult(job)
}

// WaitMC implements Client.
func (l *Local) WaitMC(ctx context.Context, id string) (*MCResult, error) {
	job, err := l.eng.WaitMC(ctx, id)
	if err != nil {
		if job.ID == "" {
			return nil, fmt.Errorf("%w %q", ErrNotFound, id)
		}
		return nil, err
	}
	job.Points = nil
	return toMCResult(job)
}

// MCResults implements Client.
func (l *Local) MCResults(_ context.Context, id string) (*MCResult, error) {
	job, ok := l.eng.GetMC(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	switch job.Status {
	case engine.StatusDone:
		return toMCResult(job)
	case engine.StatusFailed, engine.StatusCanceled:
		return nil, &SweepError{ID: job.ID, Status: string(job.Status), Message: job.Error}
	default:
		return nil, fmt.Errorf("%w: mc job %s is %s (%d/%d points)",
			ErrNotDone, job.ID, job.Status, job.Progress.Completed, job.Progress.TotalPoints)
	}
}

// MCEvents implements Client.
func (l *Local) MCEvents(ctx context.Context, id string) (<-chan MCEvent, error) {
	ch, cancel, ok := l.eng.SubscribeMC(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNotFound, id)
	}
	out := make(chan MCEvent, 16)
	go func() {
		defer close(out)
		defer cancel()
		for {
			select {
			case ev, open := <-ch:
				if !open {
					return
				}
				var e MCEvent
				if err := reencode(ev, &e); err != nil {
					return
				}
				select {
				case out <- e:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// CancelMC implements Client.
func (l *Local) CancelMC(_ context.Context, id string) error {
	switch err := l.eng.CancelMC(id); {
	case err == nil:
		return nil
	case errors.Is(err, engine.ErrAlreadyDone):
		return fmt.Errorf("%w: mc job %q", ErrAlreadyDone, id)
	default:
		return fmt.Errorf("%w %q", ErrNotFound, id)
	}
}

func toMCResult(job engine.MCJob) (*MCResult, error) {
	var r MCResult
	if err := reencode(job, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// --- Remote implementation ---

// RunMC implements Client.
func (c *Remote) RunMC(ctx context.Context, spec *MCSpec) (*MCResult, error) {
	id, err := c.SubmitMC(ctx, spec)
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitMC(ctx, id); err != nil {
		return nil, err
	}
	return c.MCResults(ctx, id)
}

// SubmitMC implements Client.
func (c *Remote) SubmitMC(ctx context.Context, spec *MCSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	body, err := json.Marshal(spec.request())
	if err != nil {
		return "", err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.call(ctx, http.MethodPost, "/v1/mc", body, http.StatusAccepted, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// MCStatus implements Client.
func (c *Remote) MCStatus(ctx context.Context, id string) (*MCResult, error) {
	var r MCResult
	if err := c.call(ctx, http.MethodGet, "/v1/mc/"+url.PathEscape(id), nil, http.StatusOK, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WaitMC implements Client: follow the event stream when available,
// fall back to polling the status endpoint. Reconnect-mode semantics
// match Wait: transient failures are retried, a 404 ends the wait.
func (c *Remote) WaitMC(ctx context.Context, id string) (*MCResult, error) {
	if ch, err := c.MCEvents(ctx, id); err == nil {
		for ev := range ch {
			if ev.Terminal() {
				break
			}
		}
		// Drained (terminal seen, or the stream dropped): the polling
		// loop below resolves the final status either way.
	} else if errors.Is(err, ErrNotFound) {
		return nil, err
	}
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		r, err := c.MCStatus(ctx, id)
		switch {
		case err == nil:
			switch r.Status {
			case StatusDone, StatusFailed, StatusCanceled:
				return r, nil
			}
		case !c.reconnect, errors.Is(err, ErrNotFound):
			return nil, err
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// MCResults implements Client.
func (c *Remote) MCResults(ctx context.Context, id string) (*MCResult, error) {
	var r MCResult
	if err := c.call(ctx, http.MethodGet, "/v1/mc/"+url.PathEscape(id)+"/results", nil, http.StatusOK, &r); err != nil {
		var swErr *SweepError
		if errors.As(err, &swErr) && swErr.ID == "" {
			swErr.ID = id
		}
		return nil, err
	}
	return &r, nil
}

// MCEvents implements Client: the job's NDJSON event stream, read line
// by line; canceling the context closes it. Reconnect-mode semantics
// match Events: dropped streams reopen against the daemon's replayed
// history, duplicate point events (keyed by kernel and triad) are
// skipped.
func (c *Remote) MCEvents(ctx context.Context, id string) (<-chan MCEvent, error) {
	path := "/v1/mc/" + url.PathEscape(id) + "/events"
	resp, err := c.openStream(ctx, path)
	if err != nil {
		return nil, err
	}
	out := make(chan MCEvent, 16)
	go func() {
		defer close(out)
		seen := make(map[string]bool)
		first := true
		for {
			done := forwardMCEvents(ctx, resp, out, seen, first)
			if done || !c.reconnect {
				return
			}
			first = false
			if resp = c.reopenStream(ctx, path); resp == nil {
				return
			}
		}
	}()
	return out, nil
}

// forwardMCEvents mirrors forwardSweepEvents for Monte Carlo streams.
func forwardMCEvents(ctx context.Context, resp *http.Response, out chan<- MCEvent,
	seen map[string]bool, first bool) bool {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev MCEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return true
		}
		if ev.Type == EventPoint && ev.Point != nil {
			key := fmt.Sprintf("%s|%v", ev.Point.Kernel, ev.Point.Triad)
			if seen[key] {
				continue
			}
			seen[key] = true
		} else if !first && !ev.Terminal() {
			continue
		}
		select {
		case out <- ev:
		case <-ctx.Done():
			return true
		}
		if ev.Terminal() {
			return true
		}
	}
	return false
}

// CancelMC implements Client.
func (c *Remote) CancelMC(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/mc/"+url.PathEscape(id), nil, http.StatusNoContent, nil)
}
