package vos_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/vos"
)

func testMCSpec() *vos.MCSpec {
	return vos.NewMCSpec("fir", "kmeans").Seed(7).Samples(4096).
		Triads(vos.Triad{Tclk: 4.0, Vdd: 0.9}, vos.Triad{Tclk: 3.0, Vdd: 0.8})
}

// TestMCLocalRemoteEquivalence is the Monte Carlo half of the SDK
// promise: the same MCSpec produces byte-identical points whether the
// job runs in-process or through a vosd daemon.
func TestMCLocalRemoteEquivalence(t *testing.T) {
	ctx := context.Background()
	spec := testMCSpec()

	lres, err := newLocal(t).RunMC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := newRemote(t).RunMC(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Status != vos.StatusDone || rres.Status != vos.StatusDone {
		t.Fatalf("statuses %s / %s", lres.Status, rres.Status)
	}
	if lres.Progress != rres.Progress {
		t.Fatalf("progress differs: %+v vs %+v", lres.Progress, rres.Progress)
	}
	lj, _ := json.Marshal(lres.Points)
	rj, _ := json.Marshal(rres.Points)
	if len(lres.Points) != 4 || string(lj) != string(rj) {
		t.Fatalf("local and remote points differ:\nlocal:  %s\nremote: %s", lj, rj)
	}

	// The lookup helper finds every cell of the grid.
	for _, pt := range lres.Points {
		got := lres.Point(pt.Kernel, pt.Triad)
		if got == nil || got.Mean != pt.Mean {
			t.Fatalf("Point(%s, %s) lookup failed", pt.Kernel, pt.Triad.Label())
		}
	}
}

// TestMCEventsBothTransports streams a Monte Carlo job through both
// transports: point events for every cell, then one terminal done event.
func TestMCEventsBothTransports(t *testing.T) {
	ctx := context.Background()
	for name, cli := range map[string]vos.Client{"local": newLocal(t), "remote": newRemote(t)} {
		t.Run(name, func(t *testing.T) {
			id, err := cli.SubmitMC(ctx, testMCSpec())
			if err != nil {
				t.Fatal(err)
			}
			ch, err := cli.MCEvents(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			var events []vos.MCEvent
			for ev := range ch {
				events = append(events, ev)
			}
			if len(events) == 0 {
				t.Fatal("no events")
			}
			last := events[len(events)-1]
			if !last.Terminal() || last.Type != vos.EventDone {
				t.Fatalf("last event %+v", last)
			}
			points := 0
			for i, ev := range events {
				if ev.Type == vos.EventPoint {
					if ev.Point == nil {
						t.Fatalf("point event %d without payload", i)
					}
					points++
				}
			}
			if points != 4 {
				t.Fatalf("%d point events, want 4", points)
			}
		})
	}
}

// TestMCClientErrors checks the Monte Carlo typed error surface on both
// transports.
func TestMCClientErrors(t *testing.T) {
	ctx := context.Background()
	for name, cli := range map[string]vos.Client{"local": newLocal(t), "remote": newRemote(t)} {
		t.Run(name, func(t *testing.T) {
			if _, err := cli.MCStatus(ctx, "mc-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("MCStatus unknown: %v", err)
			}
			if _, err := cli.MCResults(ctx, "mc-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("MCResults unknown: %v", err)
			}
			if err := cli.CancelMC(ctx, "mc-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("CancelMC unknown: %v", err)
			}
			if _, err := cli.MCEvents(ctx, "mc-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("MCEvents unknown: %v", err)
			}

			// A job heavy enough that Cancel always beats completion;
			// MCResults on the running job reports ErrNotDone, and after
			// cancellation a *SweepError.
			big := testMCSpec().Samples(1 << 24)
			id, err := cli.SubmitMC(ctx, big)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cli.MCResults(ctx, id); !errors.Is(err, vos.ErrNotDone) {
				t.Fatalf("MCResults while running: %v", err)
			}
			if err := cli.CancelMC(ctx, id); err != nil {
				t.Fatal(err)
			}
			res, err := cli.WaitMC(ctx, id)
			if err != nil {
				t.Fatalf("WaitMC after cancel: %v", err)
			}
			if res.Status == vos.StatusCanceled {
				var swErr *vos.SweepError
				if _, err := cli.MCResults(ctx, id); !errors.As(err, &swErr) || swErr.Status != vos.StatusCanceled {
					t.Fatalf("MCResults after cancel: %v", err)
				}
			}

			// Spec validation errors surface before execution.
			if _, err := cli.SubmitMC(ctx, vos.NewMCSpec("fft")); err == nil {
				t.Fatal("bogus kernel accepted")
			}
			if _, err := cli.SubmitMC(ctx, vos.NewMCSpec("fir").RepRange(5, 2)); err == nil {
				t.Fatal("inverted rep range accepted")
			}
		})
	}
}
