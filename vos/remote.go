package vos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/engine/httpapi"
)

// RemoteOptions configures a vosd HTTP client.
type RemoteOptions struct {
	// HTTPClient overrides the transport; nil uses a dedicated client
	// with no global timeout (per-call contexts bound the requests, and
	// event streams are long-lived by design).
	HTTPClient *http.Client
	// Retries is how many times idempotent requests (GET, DELETE) are
	// retried after transport errors or 5xx responses; negative disables
	// retries. Default: 2. Submissions (POST) are never retried — a
	// replay could start a duplicate sweep.
	Retries int
	// RetryBackoff is the base delay between retries, doubling each
	// attempt up to RetryBackoffMax; the actual delay is jittered
	// uniformly over [d/2, d] so clients whose retries were synchronized
	// by a shared failure don't stampede the recovering server in
	// lockstep. Default: 100ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponentially growing delay. Default: 5s.
	RetryBackoffMax time.Duration
	// JitterSeed seeds the retry jitter; 0 derives a seed from the
	// clock. Fix it to make retry schedules reproducible (the chaos
	// harness does).
	JitterSeed int64
	// PollInterval paces the Wait fallback polling loop used when the
	// event stream is unavailable. Default: 150ms.
	PollInterval time.Duration
	// Tenant names this client in the daemon's per-tenant in-flight
	// sweep quotas (the X-Vos-Tenant header). Empty means the daemon's
	// default tenant. Tenancy is cooperative accounting, not
	// authentication.
	Tenant string
	// Reconnect makes the client survive daemon restarts against a
	// journaled vosd (see the -journal-dir flag): a dropped event stream
	// is reopened with backoff — the daemon replays the job's history
	// from its journal, and already-delivered point events are
	// deduplicated so consumers see each point once — and Wait/WaitMC
	// keep retrying transient failures (connection refused while the
	// daemon restarts, 503 while it replays) instead of giving up. A 404
	// stays authoritative and ends the wait: a journaled daemon answers
	// 503, not 404, while an id might still be in replay. Off by
	// default: without a journal a restarted daemon has genuinely
	// forgotten the job, and retrying would just mask that.
	Reconnect bool
}

// Remote is the HTTP Client for a vosd daemon (see API.md for the REST
// surface it speaks). Errors carry the daemon's structured error
// envelope as *APIError and match the package sentinels under errors.Is;
// all calls honor context cancellation.
type Remote struct {
	base       *url.URL
	httpc      *http.Client
	retries    int
	backoff    time.Duration
	backoffMax time.Duration
	poll       time.Duration
	tenant     string
	reconnect  bool

	// jitterMu guards rng: retries from concurrent calls draw from one
	// seeded stream.
	jitterMu sync.Mutex
	rng      *rand.Rand
}

var _ Client = (*Remote)(nil)

// NewRemote returns a client for the daemon at baseURL (e.g.
// "http://localhost:8420").
func NewRemote(baseURL string, opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("vos: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("vos: server URL %q needs a scheme and host", baseURL)
	}
	r := &Remote{
		base:       u,
		httpc:      opts.HTTPClient,
		retries:    opts.Retries,
		backoff:    opts.RetryBackoff,
		backoffMax: opts.RetryBackoffMax,
		poll:       opts.PollInterval,
		tenant:     opts.Tenant,
		reconnect:  opts.Reconnect,
	}
	if r.httpc == nil {
		r.httpc = &http.Client{}
	}
	if opts.Retries == 0 {
		r.retries = 2
	} else if opts.Retries < 0 {
		r.retries = 0
	}
	if r.backoff <= 0 {
		r.backoff = 100 * time.Millisecond
	}
	if r.backoffMax <= 0 {
		r.backoffMax = 5 * time.Second
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r.rng = rand.New(rand.NewSource(seed))
	if r.poll <= 0 {
		r.poll = 150 * time.Millisecond
	}
	return r, nil
}

// retryDelay computes the pause before retry attempt (1-based): the
// base backoff doubled per attempt, capped at backoffMax, then jittered
// uniformly over [d/2, d]. The cap bounds the worst-case stall behind a
// long retry budget (the old unbounded shift reached minutes within a
// dozen attempts — and overflowed beyond that); the jitter decorrelates
// clients whose retries a shared failure synchronized, so a recovering
// server sees a spread of retries instead of a stampede.
func (c *Remote) retryDelay(attempt int) time.Duration {
	d := c.backoff
	// Cap the shift: past 20 doublings any sane base has long since hit
	// backoffMax, and an unchecked shift would overflow the duration.
	if attempt > 1 {
		shift := attempt - 1
		if shift > 20 {
			shift = 20
		}
		d <<= shift
	}
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	c.jitterMu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.jitterMu.Unlock()
	return jittered
}

// Close releases idle connections.
func (c *Remote) Close() error {
	c.httpc.CloseIdleConnections()
	return nil
}

// Run implements Client.
func (c *Remote) Run(ctx context.Context, spec *Spec) (*Result, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if _, err := c.Wait(ctx, id); err != nil {
		return nil, err
	}
	return c.Results(ctx, id)
}

// Submit implements Client.
func (c *Remote) Submit(ctx context.Context, spec *Spec) (string, error) {
	// Validate locally first: a malformed Spec should not need a network
	// round trip to be diagnosed.
	if err := spec.Validate(); err != nil {
		return "", err
	}
	body, err := json.Marshal(spec.request())
	if err != nil {
		return "", err
	}
	var resp httpapi.SubmitResponse
	if err := c.call(ctx, http.MethodPost, "/v1/sweeps", body, http.StatusAccepted, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status implements Client.
func (c *Remote) Status(ctx context.Context, id string) (*Result, error) {
	var r Result
	if err := c.call(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, http.StatusOK, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Wait implements Client. It follows the event stream when available and
// falls back to polling the status endpoint. In Reconnect mode the
// polling loop also retries transient Status failures — everything but a
// 404, which a journaled daemon only sends once replay has finished and
// the id is authoritatively unknown.
func (c *Remote) Wait(ctx context.Context, id string) (*Result, error) {
	if ch, err := c.Events(ctx, id); err == nil {
		for ev := range ch {
			if ev.Terminal() {
				break
			}
		}
		// Drained (terminal seen, or the stream dropped): the polling
		// loop below resolves the final status either way.
	} else if errors.Is(err, ErrNotFound) {
		return nil, err
	}
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		r, err := c.Status(ctx, id)
		switch {
		case err == nil:
			switch r.Status {
			case StatusDone, StatusFailed, StatusCanceled:
				return r, nil
			}
		case !c.reconnect, errors.Is(err, ErrNotFound):
			return nil, err
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Results implements Client.
func (c *Remote) Results(ctx context.Context, id string) (*Result, error) {
	var r Result
	if err := c.call(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id)+"/results", nil, http.StatusOK, &r); err != nil {
		// The error envelope does not echo the sweep id; stamp it so
		// *SweepError carries the same fields on both transports.
		var swErr *SweepError
		if errors.As(err, &swErr) && swErr.ID == "" {
			swErr.ID = id
		}
		return nil, err
	}
	return &r, nil
}

// openStream opens one NDJSON event stream, returning the live response
// or a decoded envelope error.
func (c *Remote) openStream(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base.JoinPath(path).String(), nil)
	if err != nil {
		return nil, err
	}
	if c.tenant != "" {
		req.Header.Set("X-Vos-Tenant", c.tenant)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("vos: events stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// reopenStream retries openStream with the client's backoff until it
// succeeds, the id is authoritatively unknown (404 — give up), or the
// context dies. Only used in Reconnect mode.
func (c *Remote) reopenStream(ctx context.Context, path string) *http.Response {
	for attempt := 1; ; attempt++ {
		select {
		case <-time.After(c.retryDelay(attempt)):
		case <-ctx.Done():
			return nil
		}
		resp, err := c.openStream(ctx, path)
		if err == nil {
			return resp
		}
		if errors.Is(err, ErrNotFound) || ctx.Err() != nil {
			return nil
		}
	}
}

// Events implements Client. The stream is read line-by-line from the
// daemon's NDJSON endpoint; canceling the context closes it. In
// Reconnect mode a dropped stream is reopened against the daemon's
// journal-replayed history: point events already delivered are skipped
// (keyed by operator and triad) and bare progress events are not
// repeated, so consumers see each point exactly once and still get the
// terminal event.
func (c *Remote) Events(ctx context.Context, id string) (<-chan Event, error) {
	path := "/v1/sweeps/" + url.PathEscape(id) + "/events"
	resp, err := c.openStream(ctx, path)
	if err != nil {
		return nil, err
	}
	out := make(chan Event, 16)
	go func() {
		defer close(out)
		seen := make(map[string]bool)
		first := true
		for {
			done := forwardSweepEvents(ctx, resp, out, seen, first)
			if done || !c.reconnect {
				return
			}
			first = false
			if resp = c.reopenStream(ctx, path); resp == nil {
				return
			}
		}
	}()
	return out, nil
}

// forwardSweepEvents drains one stream connection into out, reporting
// whether the stream completed (terminal event delivered or consumer
// gone). On replayed connections (first == false) duplicate point
// events and bare progress events are suppressed.
func forwardSweepEvents(ctx context.Context, resp *http.Response, out chan<- Event,
	seen map[string]bool, first bool) bool {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return true
		}
		if ev.Type == EventPoint && ev.Point != nil {
			key := fmt.Sprintf("%s|%s|%d|%v", ev.Bench, ev.Arch, ev.Width, ev.Point.Triad)
			if seen[key] {
				continue
			}
			seen[key] = true
		} else if !first && !ev.Terminal() {
			continue
		}
		select {
		case out <- ev:
		case <-ctx.Done():
			return true
		}
		if ev.Terminal() {
			return true
		}
	}
	return false
}

// Cancel implements Client.
func (c *Remote) Cancel(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/sweeps/"+url.PathEscape(id), nil, http.StatusNoContent, nil)
}

// CacheStats implements Client.
func (c *Remote) CacheStats(ctx context.Context) (*CacheStats, error) {
	var stats CacheStats
	if err := c.call(ctx, http.MethodGet, "/v1/cache/stats", nil, http.StatusOK, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// call performs one API request, retrying idempotent methods on
// transport errors and 5xx responses, and decoding the error envelope on
// any other status than wantStatus.
func (c *Remote) call(ctx context.Context, method, path string, body []byte, wantStatus int, out any) error {
	idempotent := method == http.MethodGet || method == http.MethodDelete
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.retryDelay(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base.JoinPath(path).String(), rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.tenant != "" {
			req.Header.Set("X-Vos-Tenant", c.tenant)
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("vos: %s %s: %w", method, path, err)
			continue
		}
		if resp.StatusCode >= 500 {
			apiErr := decodeError(resp)
			resp.Body.Close()
			lastErr = apiErr
			continue
		}
		if resp.StatusCode != wantStatus {
			defer resp.Body.Close()
			return decodeError(resp)
		}
		if out != nil {
			err = json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("vos: %s %s: decode response: %w", method, path, err)
			}
			return nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	return lastErr
}

// decodeError turns a non-2xx response into a typed error: *SweepError
// for terminal sweep states, *APIError otherwise.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error.Code == "" {
		return &APIError{
			StatusCode: resp.StatusCode,
			Code:       "unexpected_response",
			Message:    strings.TrimSpace(string(data)),
		}
	}
	switch env.Error.Code {
	case httpapi.CodeSweepFailed, httpapi.CodeSweepCanceled:
		status := StatusFailed
		if env.Error.Code == httpapi.CodeSweepCanceled {
			status = StatusCanceled
		}
		return &SweepError{Status: status, Message: env.Error.Message}
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Code:       env.Error.Code,
		Message:    env.Error.Message,
	}
}
