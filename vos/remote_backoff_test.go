package vos

import (
	"testing"
	"time"
)

func backoffRemote(t *testing.T, opts RemoteOptions) *Remote {
	t.Helper()
	r, err := NewRemote("http://127.0.0.1:1", opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRetryDelayBounds: every delay is inside [d/2, d] for the capped
// exponential d, and the cap holds no matter how high the attempt
// count climbs (including shift counts that would overflow a naive
// backoff << attempt).
func TestRetryDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	max := 2 * time.Second
	r := backoffRemote(t, RemoteOptions{
		RetryBackoff:    base,
		RetryBackoffMax: max,
		JitterSeed:      7,
	})
	for attempt := 1; attempt <= 80; attempt++ {
		want := base << (attempt - 1)
		if attempt > 21 || want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 32; i++ {
			got := r.retryDelay(attempt)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
}

// TestRetryDelayDeterministic: a fixed JitterSeed reproduces the exact
// delay schedule — the property the chaos harness leans on to replay a
// fault run, including its retry timing, from a single seed.
func TestRetryDelayDeterministic(t *testing.T) {
	opts := RemoteOptions{RetryBackoff: 50 * time.Millisecond, JitterSeed: 42}
	a := backoffRemote(t, opts)
	b := backoffRemote(t, opts)
	for attempt := 1; attempt <= 12; attempt++ {
		if da, db := a.retryDelay(attempt), b.retryDelay(attempt); da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, da, db)
		}
	}
	// And a different seed diverges somewhere in the schedule.
	c := backoffRemote(t, RemoteOptions{RetryBackoff: 50 * time.Millisecond, JitterSeed: 43})
	d := backoffRemote(t, RemoteOptions{RetryBackoff: 50 * time.Millisecond, JitterSeed: 42})
	same := true
	for attempt := 1; attempt <= 12; attempt++ {
		if c.retryDelay(attempt) != d.retryDelay(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 12-delay schedules")
	}
}

// TestRetryDelayJitterSpreads: the jitter actually varies — repeated
// draws at one attempt level are not all the same value (that is the
// whole point: desynchronizing clients a shared failure synchronized).
func TestRetryDelayJitterSpreads(t *testing.T) {
	r := backoffRemote(t, RemoteOptions{RetryBackoff: time.Second, JitterSeed: 1})
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[r.retryDelay(4)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 draws produced %d distinct delays; jitter is not jittering", len(seen))
	}
}
