package vos_test

// Fault-path tests for the Remote client: a daemon that flakes, a
// severed event stream, and caller-side cancellation. A cluster
// coordinator leans on exactly these paths when it re-routes shards, so
// they get their own transport-level coverage here against a scripted
// HTTP server rather than a real engine.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/vos"
)

const faultEnvelope = `{"error":{"code":"internal","message":"transient"}}`

// newFaultClient wraps an httptest handler in a Remote with fast
// retry/poll pacing so fault tests stay sub-second.
func newFaultClient(t *testing.T, h http.Handler) *vos.Remote {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client, err := vos.NewRemote(ts.URL, vos.RemoteOptions{
		RetryBackoff: 5 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// TestRemoteRetriesTransient5xx checks GETs survive a 5xx blip: the
// first status fetch fails server-side, the retry succeeds, and the
// caller sees only the good response.
func TestRemoteRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	client := newFaultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, faultEnvelope)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"s-1","status":"done","progress":{"totalPoints":1,"completed":1}}`)
	}))

	res, err := client.Status(context.Background(), "s-1")
	if err != nil {
		t.Fatalf("Status after one 5xx: %v", err)
	}
	if res.Status != vos.StatusDone {
		t.Fatalf("status = %q", res.Status)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d requests; want a single retry (2)", n)
	}
}

// TestRemoteSubmitNotRetried checks POSTs are never replayed: a retried
// submission could start a duplicate sweep.
func TestRemoteSubmitNotRetried(t *testing.T) {
	var calls atomic.Int64
	client := newFaultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, faultEnvelope)
	}))

	_, err := client.Submit(context.Background(), vos.NewSpec().Widths(4))
	if err == nil {
		t.Fatal("Submit against a 500-only daemon succeeded")
	}
	var apiErr *vos.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v; want the daemon's *APIError", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d POSTs; submissions must not be retried", n)
	}
}

// TestRemoteWaitSurvivesStreamDrop severs the NDJSON event stream after
// one point event — mid-sweep, no terminal event — and checks Wait
// falls back to status polling and still returns the finished result.
func TestRemoteWaitSurvivesStreamDrop(t *testing.T) {
	var statusCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s-1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"type":"point","sweepId":"s-1","arch":"RCA","width":4}`)
		w.(http.Flusher).Flush()
		// Die the way a crashed daemon does: the TCP stream resets with
		// the sweep still unfinished.
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /v1/sweeps/s-1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status := vos.StatusRunning
		if statusCalls.Add(1) >= 3 {
			status = vos.StatusDone
		}
		fmt.Fprintf(w, `{"id":"s-1","status":%q,"progress":{"totalPoints":1,"completed":1}}`, status)
	})
	client := newFaultClient(t, mux)

	res, err := client.Wait(context.Background(), "s-1")
	if err != nil {
		t.Fatalf("Wait after stream drop: %v", err)
	}
	if res.Status != vos.StatusDone {
		t.Fatalf("status = %q", res.Status)
	}
	if n := statusCalls.Load(); n < 3 {
		t.Fatalf("%d status polls; Wait did not fall back to polling", n)
	}
}

// TestRemoteWaitCancellation checks a canceled context unblocks Wait
// against a daemon whose sweep never finishes and whose event stream
// never closes.
func TestRemoteWaitCancellation(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s-1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.(http.Flusher).Flush()
		<-r.Context().Done() // hold the stream open, emit nothing
	})
	mux.HandleFunc("GET /v1/sweeps/s-1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"s-1","status":"running","progress":{"totalPoints":1}}`)
	})
	client := newFaultClient(t, mux)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Wait(ctx, "s-1")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let Wait attach to the stream
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait returned %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not unblock after cancellation")
	}
}
