package vos

import (
	"fmt"
	"math"
	"time"

	"repro/internal/triad"
)

// Sweep lifecycle states, as reported by Result.Status and Event.Status.
const (
	StatusPending  = "pending"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Triad is one operating point: capture clock period (ns), supply voltage
// (V) and symmetric forward-body-bias magnitude (V).
type Triad struct {
	Tclk float64 `json:"tclk"`
	Vdd  float64 `json:"vdd"`
	Vbb  float64 `json:"vbb"`
}

// Label formats the triad the way the paper's Fig. 8 x-axes do:
// "Tclk,Vdd,Vbb" with "±2" for the symmetric body bias.
func (t Triad) Label() string { return triad.Triad(t).Label() }

// Report mirrors the synthesis report of one operator — the columns of
// the paper's Table II plus the timing the triads derive from.
type Report struct {
	Name      string
	GateCount int
	// Area is the total cell area (µm²).
	Area float64
	// CriticalPath is the margined critical path (ns) the triads derive
	// from; TrueCriticalPath is the raw STA longest path.
	CriticalPath     float64
	TrueCriticalPath float64
	// TotalPower, DynamicPower, LeakagePower are µW at the nominal point.
	TotalPower   float64
	DynamicPower float64
	LeakagePower float64
	// EnergyPerOp is the nominal per-operation energy (fJ).
	EnergyPerOp float64
}

// ErrorStats is the raw captured-vs-exact counter set of one point,
// sufficient to recompute every derived metric.
type ErrorStats struct {
	Width       int      `json:"width"`
	Words       uint64   `json:"words"`
	FaultyBits  uint64   `json:"faultyBits"`
	FaultyWords uint64   `json:"faultyWords"`
	PerBit      []uint64 `json:"perBit"`
	SumSqErr    float64  `json:"sumSqErr"`
	SumSqSig    float64  `json:"sumSqSig"`
	Hamming     uint64   `json:"hamming"`
	Weighted    float64  `json:"weighted"`
}

// Point is one characterized operating point of an operator.
type Point struct {
	Triad Triad      `json:"triad"`
	Stats ErrorStats `json:"stats"`
	// BER and WER are the bit and word error rates; PerBit is the
	// per-output-bit error probability, LSB first, carry-out last.
	BER    float64   `json:"ber"`
	WER    float64   `json:"wer"`
	PerBit []float64 `json:"perBit"`
	// EnergyPerOpFJ is the mean per-operation energy; Efficiency is the
	// saving relative to the operator's nominal point.
	EnergyPerOpFJ float64 `json:"energyPerOpFJ"`
	// LateFraction is the fraction of operations with activity after the
	// capture edge.
	LateFraction float64 `json:"lateFraction"`
	Efficiency   float64 `json:"efficiency"`
	// FromCache records whether the point was served from the engine's
	// result cache rather than simulated.
	FromCache bool `json:"fromCache"`
	// Fidelity is present only on BackendModel points: the trained error
	// model's cross-validation report against the gate-level oracle. For
	// those points LateFraction carries the oracle's word-error fraction
	// over the calibration patterns.
	Fidelity *Fidelity `json:"fidelity,omitempty"`
}

// Operator is one architecture × width of a sweep result.
type Operator struct {
	// Bench names the operator the way the paper does ("8-bit RCA").
	Bench  string  `json:"bench"`
	Arch   string  `json:"arch"`
	Width  int     `json:"width"`
	Report *Report `json:"report"`
	// Points are the characterized operating points in plan order; under
	// PolicyPaper the first point is the nominal triad.
	Points []Point `json:"points"`
	// SortedIdx orders Points the way the paper's Fig. 8 x-axis does
	// (ascending BER, ties by energy).
	SortedIdx []int `json:"sortedIdx"`
}

// Progress is a sweep's completion counter set; Completed splits into
// CacheHits and Executed by how each point was served.
type Progress struct {
	TotalPoints int `json:"totalPoints"`
	Completed   int `json:"completed"`
	CacheHits   int `json:"cacheHits"`
	Executed    int `json:"executed"`
}

// Result is a sweep snapshot: identity, lifecycle state and — once the
// sweep is done and fetched through Client.Results or Client.Run — the
// per-operator results.
type Result struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	Progress  Progress   `json:"progress"`
	Operators []Operator `json:"results,omitempty"`
}

// Operator returns the result's operator for an architecture and width,
// or nil if the sweep did not include it.
func (r *Result) Operator(arch string, width int) *Operator {
	for i := range r.Operators {
		if r.Operators[i].Arch == arch && r.Operators[i].Width == width {
			return &r.Operators[i]
		}
	}
	return nil
}

// Nominal returns the operator's nominal (first) point, or nil if the
// operator has no points.
func (op *Operator) Nominal() *Point {
	if len(op.Points) == 0 {
		return nil
	}
	return &op.Points[0]
}

// Fig8 projects the operator onto the paper's Fig. 8: its points in
// x-axis order (ascending BER, ties by ascending energy).
func (op *Operator) Fig8() []Point {
	out := make([]Point, 0, len(op.Points))
	for _, i := range op.SortedIdx {
		out = append(out, op.Points[i])
	}
	if len(out) == 0 { // no precomputed order (e.g. hand-built Operator)
		out = append(out, op.Points...)
	}
	return out
}

// Fig5Point is one curve of the paper's Fig. 5: the per-output-bit error
// probability at one supply voltage.
type Fig5Point struct {
	Vdd    float64
	PerBit []float64 // LSB..MSB, including carry-out
	BER    float64
}

// Fig5 projects the operator onto the paper's Fig. 5: one entry per
// zero-body-bias point, in point order. Meaningful for PolicyVddGrid
// sweeps, where every point runs at the synthesis clock.
func (op *Operator) Fig5() []Fig5Point {
	var out []Fig5Point
	for _, p := range op.Points {
		if p.Triad.Vbb != 0 {
			continue
		}
		out = append(out, Fig5Point{Vdd: p.Triad.Vdd, PerBit: p.PerBit, BER: p.BER})
	}
	return out
}

// Band is a BER range of Table IV in rounded percent (inclusive bounds).
type Band struct{ Lo, Hi int }

// String formats the band the way the paper's Table IV row labels do.
func (b Band) String() string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%d%%", b.Lo)
	}
	return fmt.Sprintf("%d%% to %d%%", b.Lo, b.Hi)
}

// Table4Bands are the paper's BER ranges.
var Table4Bands = []Band{{0, 0}, {1, 10}, {11, 20}, {21, 25}}

// BandSummary is one cell group of Table IV for one operator.
type BandSummary struct {
	Band  Band
	Count int
	// MaxEff is the best energy efficiency (fraction) among the band's
	// points; BERAtMaxEff is that point's BER; Best is its triad. Valid
	// only when Count > 0.
	MaxEff      float64
	BERAtMaxEff float64
	Best        Triad
}

// Table4 projects the operator onto the paper's Table IV: its points
// binned into BER bands by rounding to whole percent, with the best
// energy efficiency per band.
func (op *Operator) Table4() []BandSummary {
	out := make([]BandSummary, len(Table4Bands))
	for i, b := range Table4Bands {
		out[i].Band = b
	}
	for _, p := range op.Points {
		pct := int(math.Round(p.BER * 100))
		for i, b := range Table4Bands {
			if pct < b.Lo || pct > b.Hi {
				continue
			}
			s := &out[i]
			s.Count++
			if s.Count == 1 || p.Efficiency > s.MaxEff {
				s.MaxEff = p.Efficiency
				s.BERAtMaxEff = p.BER
				s.Best = p.Triad
			}
		}
	}
	return out
}

// TriadClocks returns the four Table III clock periods (ns) the paper's
// methodology derives for this operator from its synthesis report,
// relaxed first.
func (op *Operator) TriadClocks() [4]float64 {
	return triad.PaperClockRatios(op.Arch, op.Width).Clocks(op.Report.CriticalPath)
}
