package vos

import (
	"time"

	"repro/internal/engine"
	"repro/internal/triad"
)

// Triad policies selectable on a Spec.
const (
	// PolicyPaper sweeps the paper's Table III set — 43 operating triads
	// per operator, derived from each operator's synthesis timing report.
	PolicyPaper = engine.PolicyPaper
	// PolicyVddGrid sweeps a Vdd × Vbb grid at the synthesis clock (the
	// Fig. 5 axis).
	PolicyVddGrid = engine.PolicyVddGrid
	// PolicyExplicit sweeps exactly the triads given to Spec.Triads.
	PolicyExplicit = engine.PolicyExplicit
)

// Backend names selectable on a Spec.
const (
	// BackendGate is the event-driven gate-level timing engine (default).
	BackendGate = "gate"
	// BackendRC is the switch-level RC cross-check engine.
	BackendRC = "rc"
	// BackendModel serves points from the calibrated statistical error
	// model: each operating point trains a P(C | Cthmax) table against
	// the gate-level oracle once, then replays the sweep stimulus through
	// the table. Modeled points carry a Fidelity report and are orders of
	// magnitude cheaper per pattern than gate simulation.
	BackendModel = "model"
)

// Spec describes one characterization sweep: which operators to
// synthesize (architectures × widths), how to stimulate them, and which
// operating points to visit. The zero Spec is valid and means the paper's
// default experiment: an 8-bit RCA over its 43 Table III triads with
// 2000 uniform patterns. Builder methods return the receiver, so a Spec
// reads as one chain:
//
//	vos.NewSpec().Arches("RCA", "BKA").Widths(8, 16).Patterns(20000)
//
// A Spec validates lazily: Client methods surface configuration errors,
// or call Validate directly.
type Spec struct {
	req engine.Request
}

// NewSpec returns an empty Spec (the default experiment).
func NewSpec() *Spec { return &Spec{} }

// Arches selects the operator architectures to sweep: "RCA", "BKA",
// "KSA", "SKL", "CSEL". Default: RCA.
func (s *Spec) Arches(names ...string) *Spec {
	s.req.Arches = append([]string(nil), names...)
	return s
}

// Widths selects the operand widths (1–32 bits). Default: 8. Every
// architecture × width combination becomes one operator of the sweep.
func (s *Spec) Widths(ws ...int) *Spec {
	s.req.Widths = append([]int(nil), ws...)
	return s
}

// Patterns sets the stimulus count per operating point (paper: 20000).
// Default: 2000.
func (s *Spec) Patterns(n int) *Spec {
	s.req.Patterns = n
	return s
}

// Seed drives pattern generation and per-gate mismatch sampling; equal
// seeds give bit-identical results. Default: 1.
func (s *Spec) Seed(seed uint64) *Spec {
	s.req.Seed = seed
	return s
}

// PropagateP sets the stimulus carry-propagate probability in [0, 1]
// (0.5 = the paper's uniform profile). Default: 0.5.
func (s *Spec) PropagateP(p float64) *Spec {
	s.req.PropagateP = p
	return s
}

// Backend selects the point engine: BackendGate (default), BackendRC or
// BackendModel.
func (s *Spec) Backend(name string) *Spec {
	s.req.Backend = name
	return s
}

// Streaming selects free-running capture — vectors applied every Tclk
// without settling between launches (gate backend only).
func (s *Spec) Streaming(on bool) *Spec {
	s.req.Streaming = on
	return s
}

// PaperTriads selects the PolicyPaper triad set (the default).
func (s *Spec) PaperTriads() *Spec {
	s.req.Policy = PolicyPaper
	s.req.Vdds = nil
	s.req.VbbValues = nil
	return s
}

// VddGrid selects PolicyVddGrid: a Vdd × Vbb grid at each operator's
// synthesis clock. Empty vdds defaults to 1.0 → 0.4 in 0.1 steps; empty
// vbbs defaults to {0}. This is the Fig. 5 experiment's shape.
func (s *Spec) VddGrid(vdds, vbbs []float64) *Spec {
	s.req.Policy = PolicyVddGrid
	s.req.Vdds = append([]float64(nil), vdds...)
	s.req.VbbValues = append([]float64(nil), vbbs...)
	return s
}

// Triads selects PolicyExplicit: every operator of the sweep is
// characterized at exactly these operating points, in this order. This
// is the escape hatch for externally derived operating points — and the
// shape a vosd cluster's shard sub-sweeps use, which is why explicit
// sweeps always execute on the node that received them instead of being
// re-sharded.
func (s *Spec) Triads(ts ...Triad) *Spec {
	s.req.Policy = PolicyExplicit
	s.req.Vdds = nil
	s.req.VbbValues = nil
	s.req.Triads = make([]triad.Triad, len(ts))
	for i, t := range ts {
		s.req.Triads[i] = triad.Triad(t)
	}
	return s
}

// Lease makes the sweep coordinator-leased: unless some client observes
// it — an open event stream, or a Status/Wait/Results touch — at least
// once per window d, the executing engine cancels and garbage-collects
// it. Rounded up to whole seconds. This is how a vosd cluster's shard
// sub-sweeps die with their coordinator instead of running to
// completion for nobody. Zero (the default) means no lease.
func (s *Spec) Lease(d time.Duration) *Spec {
	s.req.LeaseSec = int((d + time.Second - 1) / time.Second)
	return s
}

// Validate checks the Spec without running it.
func (s *Spec) Validate() error { return s.req.Validate() }

// request returns the engine-level request. The copy keeps the Spec
// reusable after submission.
func (s *Spec) request() engine.Request { return s.req }
