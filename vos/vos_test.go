package vos_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/carry"
	"repro/internal/engine"
	"repro/internal/engine/httpapi"
	"repro/vos"
)

func newLocal(t *testing.T) *vos.Local {
	t.Helper()
	cli, err := vos.NewLocal(vos.LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func newRemote(t *testing.T) *vos.Remote {
	t.Helper()
	eng, err := engine.New(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(httpapi.New(eng))
	t.Cleanup(ts.Close)
	cli, err := vos.NewRemote(ts.URL, vos.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func testSpec() *vos.Spec {
	return vos.NewSpec().Arches("RCA").Widths(4).Patterns(40).Seed(7)
}

// TestLocalRemoteEquivalence is the SDK's core promise: the same Spec
// produces identical Result values whether the sweep runs in-process or
// through a vosd daemon. The engine is deterministic and both transports
// share one wire encoding, so the comparison is exact, not approximate.
func TestLocalRemoteEquivalence(t *testing.T) {
	ctx := context.Background()
	spec := vos.NewSpec().Arches("RCA", "BKA").Widths(4).Patterns(40).Seed(7)

	local := newLocal(t)
	lres, err := local.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	remote := newRemote(t)
	rres, err := remote.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	if lres.Status != vos.StatusDone || rres.Status != vos.StatusDone {
		t.Fatalf("statuses %s / %s", lres.Status, rres.Status)
	}
	if lres.Progress != rres.Progress {
		t.Fatalf("progress differs: %+v vs %+v", lres.Progress, rres.Progress)
	}
	if len(lres.Operators) != 2 || !reflect.DeepEqual(lres.Operators, rres.Operators) {
		t.Fatalf("local and remote operators differ:\nlocal:  %+v\nremote: %+v",
			lres.Operators, rres.Operators)
	}

	// The projections must agree too (they only read the shared values,
	// but this guards the SortedIdx plumbing end to end).
	for i := range lres.Operators {
		if !reflect.DeepEqual(lres.Operators[i].Fig8(), rres.Operators[i].Fig8()) {
			t.Fatalf("Fig8 projection differs for %s", lres.Operators[i].Bench)
		}
		if !reflect.DeepEqual(lres.Operators[i].Table4(), rres.Operators[i].Table4()) {
			t.Fatalf("Table4 projection differs for %s", lres.Operators[i].Bench)
		}
	}
}

// TestClientErrors checks the typed error surface on both transports.
func TestClientErrors(t *testing.T) {
	ctx := context.Background()
	for name, cli := range map[string]vos.Client{"local": newLocal(t), "remote": newRemote(t)} {
		t.Run(name, func(t *testing.T) {
			if _, err := cli.Status(ctx, "s-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("Status unknown: %v", err)
			}
			if _, err := cli.Results(ctx, "s-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("Results unknown: %v", err)
			}
			if err := cli.Cancel(ctx, "s-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("Cancel unknown: %v", err)
			}
			if _, err := cli.Events(ctx, "s-999999"); !errors.Is(err, vos.ErrNotFound) {
				t.Fatalf("Events unknown: %v", err)
			}

			// A sweep heavy enough (≥ seconds) that Cancel always beats
			// completion; Results on the running sweep must report
			// ErrNotDone, and after cancellation a *SweepError.
			big := vos.NewSpec().Arches("RCA", "BKA").Widths(16, 24).Patterns(20000).Seed(3)
			id, err := cli.Submit(ctx, big)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Results(ctx, id); !errors.Is(err, vos.ErrNotDone) {
				t.Fatalf("Results while running: %v", err)
			}
			if err := cli.Cancel(ctx, id); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Wait(ctx, id); err != nil {
				t.Fatalf("Wait after cancel: %v", err)
			}
			var swErr *vos.SweepError
			if _, err := cli.Results(ctx, id); !errors.As(err, &swErr) || swErr.Status != vos.StatusCanceled {
				t.Fatalf("Results after cancel: %v", err)
			}

			// Spec validation errors surface before execution.
			if _, err := cli.Submit(ctx, vos.NewSpec().Arches("CLA")); err == nil {
				t.Fatal("bogus arch accepted")
			}
			if _, err := cli.Submit(ctx, vos.NewSpec().Widths(99)); err == nil {
				t.Fatal("bogus width accepted")
			}
		})
	}
}

// TestEvents streams a finished sweep through both transports: the
// replayed history must contain every point event before the terminal
// done event.
func TestEvents(t *testing.T) {
	ctx := context.Background()
	for name, cli := range map[string]vos.Client{"local": newLocal(t), "remote": newRemote(t)} {
		t.Run(name, func(t *testing.T) {
			id, err := cli.Submit(ctx, testSpec())
			if err != nil {
				t.Fatal(err)
			}
			ch, err := cli.Events(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			var events []vos.Event
			for ev := range ch {
				events = append(events, ev)
			}
			if len(events) == 0 {
				t.Fatal("no events")
			}
			last := events[len(events)-1]
			if !last.Terminal() || last.Type != vos.EventDone {
				t.Fatalf("last event %+v", last)
			}
			points := 0
			for i, ev := range events {
				if ev.Type == vos.EventPoint {
					if ev.Point == nil || ev.Bench != "4-bit RCA" {
						t.Fatalf("point event %d: %+v", i, ev)
					}
					if i == len(events)-1 {
						t.Fatal("point event in terminal position")
					}
					points++
				}
			}
			if points != 43 {
				t.Fatalf("%d point events, want 43", points)
			}
		})
	}
}

// TestLocalAdder builds the hardware oracle at the characterized nominal
// triad and checks it against exact addition (the nominal point is
// error-free by construction).
func TestLocalAdder(t *testing.T) {
	ctx := context.Background()
	cli := newLocal(t)
	spec := testSpec()
	res, err := cli.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	op := res.Operator("RCA", 4)
	nominal := op.Nominal()
	if nominal.BER != 0 {
		t.Fatalf("nominal point has BER %v", nominal.BER)
	}
	adder, err := cli.Adder(ctx, spec, "RCA", 4, nominal.Triad)
	if err != nil {
		t.Fatal(err)
	}
	if adder.Width() != 4 {
		t.Fatalf("adder width %d", adder.Width())
	}
	for _, p := range [][2]uint64{{0, 0}, {15, 1}, {7, 9}, {12, 11}} {
		if got, want := adder.Add(p[0], p[1]), carry.ExactAdd(p[0], p[1], 4); got != want {
			t.Fatalf("%d+%d = %d, want %d", p[0], p[1], got, want)
		}
	}
	// Unknown operator coordinates fail cleanly.
	if _, err := cli.Adder(ctx, spec, "RCA", 16, nominal.Triad); err == nil {
		t.Fatal("adder for a width outside the spec succeeded")
	}
}

// TestProjections checks the Fig5/Fig8/Table4 projections over a
// vddgrid sweep.
func TestProjections(t *testing.T) {
	ctx := context.Background()
	cli := newLocal(t)
	spec := vos.NewSpec().Arches("RCA").Widths(4).Patterns(40).Seed(1).
		VddGrid([]float64{1.0, 0.7, 0.5}, nil)
	res, err := cli.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	op := res.Operator("RCA", 4)
	if len(op.Points) != 3 {
		t.Fatalf("%d points", len(op.Points))
	}

	fig5 := op.Fig5()
	if len(fig5) != 3 || fig5[0].Vdd != 1.0 || fig5[2].Vdd != 0.5 {
		t.Fatalf("Fig5 = %+v", fig5)
	}
	if len(fig5[0].PerBit) != 5 { // 4 sum bits + carry-out
		t.Fatalf("Fig5 perBit has %d entries", len(fig5[0].PerBit))
	}

	fig8 := op.Fig8()
	for i := 1; i < len(fig8); i++ {
		if fig8[i-1].BER > fig8[i].BER {
			t.Fatal("Fig8 not sorted by BER")
		}
	}

	total := 0
	for _, s := range op.Table4() {
		total += s.Count
	}
	if total > len(op.Points) {
		t.Fatalf("Table4 binned %d of %d points", total, len(op.Points))
	}

	clocks := op.TriadClocks()
	if clocks[1] <= 0 {
		t.Fatalf("TriadClocks = %v", clocks)
	}

	// CacheStats reflects the executed sweep.
	stats, err := cli.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executions == 0 || stats.Stores == 0 {
		t.Fatalf("cache stats %+v", stats)
	}
}
